"""Integration tests for the map-reduce engine: the classic examples
(word count, inverted index) plus determinism and failure handling."""

import pytest

from repro.errors import JobError
from repro.mapreduce.counters import C
from repro.mapreduce.dfs import InMemoryDFS
from repro.mapreduce.engine import Cluster
from repro.mapreduce.job import MapReduceJob, hash_partitioner


def word_count_job(num_reducers: int = 3) -> MapReduceJob:
    def mapper(key, line, ctx):
        for word in line.split():
            ctx.emit(word, 1)

    def reducer(word, counts, ctx):
        ctx.emit(f"{word}\t{sum(counts)}")

    return MapReduceJob(
        name="word-count",
        input_paths=["in"],
        output_path="out",
        mapper=mapper,
        reducer=reducer,
        num_reducers=num_reducers,
        partitioner=hash_partitioner,
    )


@pytest.fixture
def cluster() -> Cluster:
    return Cluster(dfs=InMemoryDFS())


class TestWordCount:
    def test_counts(self, cluster):
        cluster.dfs.write_file("in", ["a b a", "b c", "a"])
        result = cluster.run_job(word_count_job())
        lines = cluster.dfs.read_dir("out")
        counts = dict(line.split("\t") for line in lines)
        assert counts == {"a": "3", "b": "2", "c": "1"}
        assert result.output_records == 3

    def test_counters(self, cluster):
        cluster.dfs.write_file("in", ["a b a", "b c", "a"])
        result = cluster.run_job(word_count_job())
        eng = result.counters
        assert eng.engine(C.MAP_INPUT_RECORDS) == 3
        assert eng.engine(C.MAP_OUTPUT_RECORDS) == 6
        assert eng.engine(C.REDUCE_INPUT_RECORDS) == 6
        assert eng.engine(C.REDUCE_INPUT_GROUPS) == 3
        assert eng.engine(C.REDUCE_OUTPUT_RECORDS) == 3
        assert result.shuffled_records == 6

    def test_one_part_file_per_reducer(self, cluster):
        cluster.dfs.write_file("in", ["a b c d e f g"])
        cluster.run_job(word_count_job(num_reducers=4))
        assert len(cluster.dfs.list_dir("out")) == 4

    def test_determinism(self):
        outputs = []
        for __ in range(2):
            c = Cluster(dfs=InMemoryDFS())
            c.dfs.write_file("in", ["z y x w", "x y", "w w w"])
            c.run_job(word_count_job())
            outputs.append(c.dfs.read_dir("out"))
        assert outputs[0] == outputs[1]


class TestEngineMechanics:
    def test_multiple_input_paths(self, cluster):
        cluster.dfs.write_file("in1", ["a"])
        cluster.dfs.write_file("in2", ["b"])
        job = word_count_job()
        job.input_paths = ["in1", "in2"]
        cluster.run_job(job)
        lines = cluster.dfs.read_dir("out")
        assert len(lines) == 2

    def test_directory_input(self, cluster):
        cluster.dfs.write_file("d/p0", ["a a"])
        cluster.dfs.write_file("d/p1", ["b"])
        job = word_count_job()
        job.input_paths = ["d"]
        cluster.run_job(job)
        counts = dict(
            line.split("\t") for line in cluster.dfs.read_dir("out")
        )
        assert counts == {"a": "2", "b": "1"}

    def test_splits_respect_split_records(self, cluster):
        cluster.split_records = 2
        cluster.dfs.write_file("in", [f"w{i}" for i in range(5)])
        result = cluster.run_job(word_count_job())
        assert len(result.map_tasks) == 3  # 2 + 2 + 1

    def test_splits_never_span_files(self, cluster):
        cluster.split_records = 100
        cluster.dfs.write_file("in1", ["a"] * 3)
        cluster.dfs.write_file("in2", ["b"] * 3)
        job = word_count_job()
        job.input_paths = ["in1", "in2"]
        result = cluster.run_job(job)
        assert len(result.map_tasks) == 2

    def test_keys_sorted_within_reducer(self, cluster):
        seen = []

        def mapper(key, line, ctx):
            ctx.emit(int(line), line)

        def reducer(key, values, ctx):
            seen.append(key)
            ctx.emit(str(key))

        cluster.dfs.write_file("in", ["3", "1", "2"])
        cluster.run_job(
            MapReduceJob(
                name="sorted",
                input_paths=["in"],
                output_path="o",
                mapper=mapper,
                reducer=reducer,
                num_reducers=1,
            )
        )
        assert seen == [1, 2, 3]

    def test_values_keep_emission_order(self, cluster):
        groups = {}

        def mapper(key, line, ctx):
            ctx.emit(0, line)

        def reducer(key, values, ctx):
            groups[key] = list(values)

        cluster.dfs.write_file("in", ["a", "b", "c"])
        cluster.run_job(
            MapReduceJob(
                name="stable",
                input_paths=["in"],
                output_path="o",
                mapper=mapper,
                reducer=reducer,
                num_reducers=1,
            )
        )
        assert groups[0] == ["a", "b", "c"]

    def test_map_only_job(self, cluster):
        def mapper(key, line, ctx):
            ctx.emit(len(line) % 2, line.upper())

        cluster.dfs.write_file("in", ["ab", "cde", "fg"])
        result = cluster.run_job(
            MapReduceJob(
                name="map-only",
                input_paths=["in"],
                output_path="o",
                mapper=mapper,
                reducer=None,
                num_reducers=2,
            )
        )
        assert sorted(cluster.dfs.read_dir("o")) == ["AB", "CDE", "FG"]
        assert result.output_records == 3

    def test_map_only_requires_string_values(self, cluster):
        def mapper(key, line, ctx):
            ctx.emit(0, 123)

        cluster.dfs.write_file("in", ["x"])
        with pytest.raises(JobError):
            cluster.run_job(
                MapReduceJob(
                    name="bad",
                    input_paths=["in"],
                    output_path="o",
                    mapper=mapper,
                    reducer=None,
                    num_reducers=1,
                )
            )


class TestInputSplits:
    """Invariants of split formation — load-bearing now that splits are
    dispatched to (possibly parallel) workers as self-contained units."""

    def _splits(self, cluster, paths):
        job = word_count_job()
        job.input_paths = paths
        return cluster._input_splits(job)

    def test_splits_never_span_files(self, cluster):
        cluster.split_records = 100
        cluster.dfs.write_file("in1", ["a"] * 3)
        cluster.dfs.write_file("in2", ["b"] * 3)
        splits = self._splits(cluster, ["in1", "in2"])
        assert len(splits) == 2
        for split in splits:
            assert len({path for path, __, __, __ in split}) == 1

    def test_splits_respect_split_records(self, cluster):
        cluster.split_records = 2
        cluster.dfs.write_file("in", [f"w{i}" for i in range(5)])
        splits = self._splits(cluster, ["in"])
        assert [len(s) for s in splits] == [2, 2, 1]

    def test_file_order_preserved_across_multi_file_inputs(self, cluster):
        cluster.split_records = 2
        cluster.dfs.write_file("d/p1", ["a0", "a1", "a2"])
        cluster.dfs.write_file("d/p0", ["b0"])
        cluster.dfs.write_file("e", ["c0", "c1"])
        splits = self._splits(cluster, ["d", "e"])
        # Directories expand sorted; explicit paths keep argument order.
        flat = [(path, lineno) for split in splits for path, lineno, __, __ in split]
        assert flat == [
            ("d/p0", 0),
            ("d/p1", 0), ("d/p1", 1), ("d/p1", 2),
            ("e", 0), ("e", 1),
        ]

    def test_records_verbatim_with_line_numbers_and_sizes(self, cluster):
        cluster.dfs.write_file("in", ["alpha", "beta"])
        ((first, second),) = [self._splits(cluster, ["in"])[0]]
        assert first == ("in", 0, "alpha", 6)
        assert second == ("in", 1, "beta", 5)

    def test_lineno_restarts_per_file(self, cluster):
        cluster.dfs.write_file("in1", ["x", "y"])
        cluster.dfs.write_file("in2", ["z"])
        splits = self._splits(cluster, ["in1", "in2"])
        assert [s[0][1] for s in splits] == [0, 0]

    def test_empty_file_yields_no_split(self, cluster):
        cluster.dfs.write_file("in1", [])
        cluster.dfs.write_file("in2", ["a"])
        splits = self._splits(cluster, ["in1", "in2"])
        assert len(splits) == 1 and splits[0][0][0] == "in2"


class TestFailures:
    def test_mapper_failure_wrapped(self, cluster):
        def mapper(key, line, ctx):
            raise ValueError("boom")

        cluster.dfs.write_file("in", ["x"])
        with pytest.raises(JobError, match="map task failed"):
            cluster.run_job(
                MapReduceJob(
                    name="failing",
                    input_paths=["in"],
                    output_path="o",
                    mapper=mapper,
                    reducer=lambda k, v, c: None,
                    num_reducers=1,
                )
            )

    def test_reducer_failure_wrapped(self, cluster):
        def mapper(key, line, ctx):
            ctx.emit(0, line)

        def reducer(key, values, ctx):
            raise RuntimeError("kaput")

        cluster.dfs.write_file("in", ["x"])
        with pytest.raises(JobError, match="reduce task 0 failed"):
            cluster.run_job(
                MapReduceJob(
                    name="failing",
                    input_paths=["in"],
                    output_path="o",
                    mapper=mapper,
                    reducer=reducer,
                    num_reducers=1,
                )
            )

    def test_missing_input(self, cluster):
        with pytest.raises(Exception):
            cluster.run_job(word_count_job())


class TestCostIntegration:
    def test_simulated_time_positive(self, cluster):
        cluster.dfs.write_file("in", ["a b c"])
        result = cluster.run_job(word_count_job())
        assert result.simulated_seconds > 0
        assert result.cost.startup_s == cluster.cost_model.job_startup_s

    def test_more_data_more_time(self):
        times = []
        for n in (100, 10_000):
            c = Cluster(dfs=InMemoryDFS())
            c.dfs.write_file("in", [f"w{i} w{i + 1}" for i in range(n)])
            times.append(c.run_job(word_count_job()).simulated_seconds)
        assert times[1] > times[0]

    def test_dfs_io_counters(self, cluster):
        cluster.dfs.write_file("in", ["hello world"])
        result = cluster.run_job(word_count_job())
        assert result.counters.engine(C.DFS_BYTES_READ) >= 12
        assert result.counters.engine(C.DFS_BYTES_WRITTEN) > 0

    def test_reduce_tasks_charged_input_bytes(self, cluster):
        """Regression: reduce TaskStats.input_bytes was always 0, so the
        reduce phase's shuffled volume never reached the cost model."""
        cluster.dfs.write_file("in", ["a b a", "b c", "a"])
        result = cluster.run_job(word_count_job())
        per_task = [t.input_bytes for t in result.reduce_tasks]
        assert sum(per_task) == result.counters.engine(C.MAP_OUTPUT_BYTES)
        # every reducer that received records is charged for them
        for stats in result.reduce_tasks:
            assert (stats.input_bytes > 0) == (stats.input_records > 0)

    def test_reduce_input_bytes_reflects_combiner(self):
        """Post-combine (shuffled) bytes are charged, not raw map output."""

        def mapper(key, line, ctx):
            for word in line.split():
                ctx.emit(word, 1)

        def reducer(word, counts, ctx):
            ctx.emit(f"{word}\t{sum(counts)}")

        results = {}
        for combine in (False, True):
            c = Cluster(dfs=InMemoryDFS())
            c.dfs.write_file("in", ["a a a a b"] * 4)
            results[combine] = c.run_job(
                MapReduceJob(
                    name="wc",
                    input_paths=["in"],
                    output_path="out",
                    mapper=mapper,
                    reducer=reducer,
                    num_reducers=1,
                    partitioner=hash_partitioner,
                    combiner=(lambda w, counts: [sum(counts)]) if combine else None,
                )
            )
        combined = results[True].reduce_tasks[0].input_bytes
        raw = results[False].reduce_tasks[0].input_bytes
        assert 0 < combined < raw
        assert combined == results[True].counters.engine(C.MAP_OUTPUT_BYTES)

    def test_wall_clock_recorded(self, cluster):
        cluster.dfs.write_file("in", ["a b c"])
        result = cluster.run_job(word_count_job())
        assert result.wall_clock_seconds > 0
