"""Integration tests for the map-reduce engine: the classic examples
(word count, inverted index) plus determinism and failure handling."""

import pytest

from repro.errors import JobError
from repro.mapreduce.counters import C
from repro.mapreduce.dfs import InMemoryDFS
from repro.mapreduce.engine import Cluster
from repro.mapreduce.job import MapReduceJob, hash_partitioner


def word_count_job(num_reducers: int = 3) -> MapReduceJob:
    def mapper(key, line, ctx):
        for word in line.split():
            ctx.emit(word, 1)

    def reducer(word, counts, ctx):
        ctx.emit(f"{word}\t{sum(counts)}")

    return MapReduceJob(
        name="word-count",
        input_paths=["in"],
        output_path="out",
        mapper=mapper,
        reducer=reducer,
        num_reducers=num_reducers,
        partitioner=hash_partitioner,
    )


@pytest.fixture
def cluster() -> Cluster:
    return Cluster(dfs=InMemoryDFS())


class TestWordCount:
    def test_counts(self, cluster):
        cluster.dfs.write_file("in", ["a b a", "b c", "a"])
        result = cluster.run_job(word_count_job())
        lines = cluster.dfs.read_dir("out")
        counts = dict(line.split("\t") for line in lines)
        assert counts == {"a": "3", "b": "2", "c": "1"}
        assert result.output_records == 3

    def test_counters(self, cluster):
        cluster.dfs.write_file("in", ["a b a", "b c", "a"])
        result = cluster.run_job(word_count_job())
        eng = result.counters
        assert eng.engine(C.MAP_INPUT_RECORDS) == 3
        assert eng.engine(C.MAP_OUTPUT_RECORDS) == 6
        assert eng.engine(C.REDUCE_INPUT_RECORDS) == 6
        assert eng.engine(C.REDUCE_INPUT_GROUPS) == 3
        assert eng.engine(C.REDUCE_OUTPUT_RECORDS) == 3
        assert result.shuffled_records == 6

    def test_one_part_file_per_reducer(self, cluster):
        cluster.dfs.write_file("in", ["a b c d e f g"])
        cluster.run_job(word_count_job(num_reducers=4))
        assert len(cluster.dfs.list_dir("out")) == 4

    def test_determinism(self):
        outputs = []
        for __ in range(2):
            c = Cluster(dfs=InMemoryDFS())
            c.dfs.write_file("in", ["z y x w", "x y", "w w w"])
            c.run_job(word_count_job())
            outputs.append(c.dfs.read_dir("out"))
        assert outputs[0] == outputs[1]


class TestEngineMechanics:
    def test_multiple_input_paths(self, cluster):
        cluster.dfs.write_file("in1", ["a"])
        cluster.dfs.write_file("in2", ["b"])
        job = word_count_job()
        job.input_paths = ["in1", "in2"]
        cluster.run_job(job)
        lines = cluster.dfs.read_dir("out")
        assert len(lines) == 2

    def test_directory_input(self, cluster):
        cluster.dfs.write_file("d/p0", ["a a"])
        cluster.dfs.write_file("d/p1", ["b"])
        job = word_count_job()
        job.input_paths = ["d"]
        cluster.run_job(job)
        counts = dict(
            line.split("\t") for line in cluster.dfs.read_dir("out")
        )
        assert counts == {"a": "2", "b": "1"}

    def test_splits_respect_split_records(self, cluster):
        cluster.split_records = 2
        cluster.dfs.write_file("in", [f"w{i}" for i in range(5)])
        result = cluster.run_job(word_count_job())
        assert len(result.map_tasks) == 3  # 2 + 2 + 1

    def test_splits_never_span_files(self, cluster):
        cluster.split_records = 100
        cluster.dfs.write_file("in1", ["a"] * 3)
        cluster.dfs.write_file("in2", ["b"] * 3)
        job = word_count_job()
        job.input_paths = ["in1", "in2"]
        result = cluster.run_job(job)
        assert len(result.map_tasks) == 2

    def test_keys_sorted_within_reducer(self, cluster):
        seen = []

        def mapper(key, line, ctx):
            ctx.emit(int(line), line)

        def reducer(key, values, ctx):
            seen.append(key)
            ctx.emit(str(key))

        cluster.dfs.write_file("in", ["3", "1", "2"])
        cluster.run_job(
            MapReduceJob(
                name="sorted",
                input_paths=["in"],
                output_path="o",
                mapper=mapper,
                reducer=reducer,
                num_reducers=1,
            )
        )
        assert seen == [1, 2, 3]

    def test_values_keep_emission_order(self, cluster):
        groups = {}

        def mapper(key, line, ctx):
            ctx.emit(0, line)

        def reducer(key, values, ctx):
            groups[key] = list(values)

        cluster.dfs.write_file("in", ["a", "b", "c"])
        cluster.run_job(
            MapReduceJob(
                name="stable",
                input_paths=["in"],
                output_path="o",
                mapper=mapper,
                reducer=reducer,
                num_reducers=1,
            )
        )
        assert groups[0] == ["a", "b", "c"]

    def test_map_only_job(self, cluster):
        def mapper(key, line, ctx):
            ctx.emit(len(line) % 2, line.upper())

        cluster.dfs.write_file("in", ["ab", "cde", "fg"])
        result = cluster.run_job(
            MapReduceJob(
                name="map-only",
                input_paths=["in"],
                output_path="o",
                mapper=mapper,
                reducer=None,
                num_reducers=2,
            )
        )
        assert sorted(cluster.dfs.read_dir("o")) == ["AB", "CDE", "FG"]
        assert result.output_records == 3

    def test_map_only_requires_string_values(self, cluster):
        def mapper(key, line, ctx):
            ctx.emit(0, 123)

        cluster.dfs.write_file("in", ["x"])
        with pytest.raises(JobError):
            cluster.run_job(
                MapReduceJob(
                    name="bad",
                    input_paths=["in"],
                    output_path="o",
                    mapper=mapper,
                    reducer=None,
                    num_reducers=1,
                )
            )


class TestFailures:
    def test_mapper_failure_wrapped(self, cluster):
        def mapper(key, line, ctx):
            raise ValueError("boom")

        cluster.dfs.write_file("in", ["x"])
        with pytest.raises(JobError, match="map task failed"):
            cluster.run_job(
                MapReduceJob(
                    name="failing",
                    input_paths=["in"],
                    output_path="o",
                    mapper=mapper,
                    reducer=lambda k, v, c: None,
                    num_reducers=1,
                )
            )

    def test_reducer_failure_wrapped(self, cluster):
        def mapper(key, line, ctx):
            ctx.emit(0, line)

        def reducer(key, values, ctx):
            raise RuntimeError("kaput")

        cluster.dfs.write_file("in", ["x"])
        with pytest.raises(JobError, match="reduce task 0 failed"):
            cluster.run_job(
                MapReduceJob(
                    name="failing",
                    input_paths=["in"],
                    output_path="o",
                    mapper=mapper,
                    reducer=reducer,
                    num_reducers=1,
                )
            )

    def test_missing_input(self, cluster):
        with pytest.raises(Exception):
            cluster.run_job(word_count_job())


class TestCostIntegration:
    def test_simulated_time_positive(self, cluster):
        cluster.dfs.write_file("in", ["a b c"])
        result = cluster.run_job(word_count_job())
        assert result.simulated_seconds > 0
        assert result.cost.startup_s == cluster.cost_model.job_startup_s

    def test_more_data_more_time(self):
        times = []
        for n in (100, 10_000):
            c = Cluster(dfs=InMemoryDFS())
            c.dfs.write_file("in", [f"w{i} w{i + 1}" for i in range(n)])
            times.append(c.run_job(word_count_job()).simulated_seconds)
        assert times[1] > times[0]

    def test_dfs_io_counters(self, cluster):
        cluster.dfs.write_file("in", ["hello world"])
        result = cluster.run_job(word_count_job())
        assert result.counters.engine(C.DFS_BYTES_READ) >= 12
        assert result.counters.engine(C.DFS_BYTES_WRITTEN) > 0
