"""Unit tests for the durable storage plane.

The end-to-end contract (algorithms × executors byte-identical under
storage chaos at replication=2) lives in
``tests/joins/test_storage_chaos_golden.py``; this module covers the
pieces: CRC32C, chunking, deterministic placement, read failover,
corruption/loss accounting, re-replication, fsck + repair, lazy
ingestion, placement persistence and the disengaged byte-identity
guarantee.
"""

from __future__ import annotations

import pytest

from repro.errors import DFSError
from repro.mapreduce.blocks import (
    BlockPlane,
    block_payload,
    chunk_blocks,
    crc32c,
)
from repro.mapreduce.dfs import InMemoryDFS
from repro.mapreduce.localfs import LocalFSDFS
from repro.mapreduce.placement import (
    PLACEMENT_PATH,
    BlockMeta,
    PlacementMap,
)
from repro.mapreduce.workers import WorkerPool


def _plane(dfs=None, pool=None, replication=2, block_records=4, ledger=None):
    return BlockPlane(
        dfs if dfs is not None else InMemoryDFS(),
        pool if pool is not None else WorkerPool(4),
        replication,
        block_records,
        ledger,
    )


# ----------------------------------------------------------------------
# CRC32C and chunking
# ----------------------------------------------------------------------
class TestCrc32c:
    def test_standard_vector(self):
        # The canonical Castagnoli check value (RFC 3720 appendix B.4).
        assert crc32c(b"123456789") == 0xE3069283

    def test_empty_and_zeroes(self):
        assert crc32c(b"") == 0
        assert crc32c(b"\x00" * 32) == 0x8A9136AA

    def test_chaining_equals_whole(self):
        data = b"the quick brown fox jumps over the lazy dog"
        assert crc32c(data[10:], crc32c(data[:10])) == crc32c(data)

    def test_differs_from_ieee_crc32(self):
        import zlib

        assert crc32c(b"123456789") != zlib.crc32(b"123456789")


class TestChunking:
    def test_exact_and_ragged(self):
        lines = [f"l{i}" for i in range(10)]
        blocks = chunk_blocks(lines, 4)
        assert [(s, len(c)) for s, c in blocks] == [(0, 4), (4, 4), (8, 2)]
        assert [line for __, chunk in blocks for line in chunk] == lines

    def test_empty_file_has_no_blocks(self):
        assert chunk_blocks([], 4) == []

    def test_invalid_block_size(self):
        with pytest.raises(DFSError, match="block_records"):
            chunk_blocks(["a"], 0)

    def test_payload_is_newline_terminated_utf8(self):
        assert block_payload(["a", "β"]) == "a\nβ\n".encode("utf-8")


# ----------------------------------------------------------------------
# Placement map
# ----------------------------------------------------------------------
class TestPlacementMap:
    def test_json_round_trip(self):
        pmap = PlacementMap(3)
        pmap.set_file(
            "d/f",
            [
                BlockMeta(0, 0, 4, 40, 123, ["w0", "w2"]),
                BlockMeta(1, 4, 2, 20, 456, ["w1", "w3"]),
            ],
        )
        text = pmap.to_json()
        assert "\n" not in text
        back = PlacementMap.from_json(text)
        assert back.replication == 3
        assert back.workers == ["w0", "w2", "w1", "w3"]
        assert [b.as_dict() for b in back.blocks("d/f")] == [
            b.as_dict() for b in pmap.blocks("d/f")
        ]

    def test_from_json_rejects_garbage(self):
        with pytest.raises(DFSError, match="corrupt placement map"):
            PlacementMap.from_json("{nope")
        with pytest.raises(DFSError, match="replication"):
            PlacementMap.from_json("{}")

    def test_holders_prefers_full_coverage(self):
        pmap = PlacementMap(2)
        pmap.set_file(
            "f",
            [
                BlockMeta(0, 0, 4, 40, 1, ["w0", "w1"]),
                BlockMeta(1, 4, 4, 40, 2, ["w1", "w2"]),
            ],
        )
        # Only w1 holds both blocks of lines 0..7.
        assert pmap.holders("f", 0, 7) == ("w1",)
        # A single block's range keeps its replica (failover) order.
        assert pmap.holders("f", 0, 3) == ("w0", "w1")
        # No single worker covers everything -> union, replica order.
        pmap.set_file(
            "g",
            [
                BlockMeta(0, 0, 4, 40, 1, ["w0"]),
                BlockMeta(1, 4, 4, 40, 2, ["w2"]),
            ],
        )
        assert pmap.holders("g", 0, 7) == ("w0", "w2")
        assert pmap.holders("g", 99, 100) == ()


# ----------------------------------------------------------------------
# The plane: write/read path
# ----------------------------------------------------------------------
class TestBlockPlaneBasics:
    def test_write_places_replication_copies(self):
        plane = _plane()
        plane.dfs.block_plane = plane
        plane.dfs.write_file("in/f", [f"r{i}" for i in range(10)])
        blocks = plane.placement.blocks("in/f")
        assert [b.start for b in blocks] == [0, 4, 8]
        for b in blocks:
            assert len(b.replicas) == 2
            assert len(set(b.replicas)) == 2
        assert plane.dfs.read_file("in/f") == [f"r{i}" for i in range(10)]

    def test_placement_is_deterministic(self):
        a, b = _plane(), _plane()
        for plane in (a, b):
            plane.on_write("in/f", [f"r{i}" for i in range(10)])
        assert a.placement.to_json() == b.placement.to_json()

    def test_read_untracked_returns_none(self):
        assert _plane().read("nope/missing") is None

    def test_lazy_ingest_of_prestaged_files(self):
        dfs = InMemoryDFS()
        dfs.write_file("in/old", ["a", "b"])  # written before the plane
        plane = _plane(dfs=dfs)
        dfs.block_plane = plane
        assert not plane.placement.tracks("in/old")
        assert dfs.read_file("in/old") == ["a", "b"]
        assert plane.placement.tracks("in/old")

    def test_internal_paths_never_recurse(self):
        plane = _plane()
        plane.dfs.block_plane = plane
        plane.on_write("in/f", ["x"])
        assert not any(
            p.startswith("_blocks") for p in plane.placement.files
        )

    def test_rewrite_replaces_blocks(self):
        plane = _plane()
        plane.on_write("f", [f"r{i}" for i in range(8)])
        plane.on_write("f", ["just-one"])
        assert len(plane.placement.blocks("f")) == 1
        assert plane.read("f") == ["just-one"]

    def test_delete_drops_placement(self):
        plane = _plane()
        plane.on_write("f", ["x", "y"])
        plane.on_delete("f")
        assert not plane.placement.tracks("f")

    def test_invalid_replication_rejected(self):
        with pytest.raises(DFSError, match="replication factor"):
            _plane(replication=0)


# ----------------------------------------------------------------------
# Failover, corruption, loss
# ----------------------------------------------------------------------
class TestFailover:
    def test_corrupt_replica_fails_over_and_is_dropped(self):
        plane = _plane()
        plane.on_write("f", [f"r{i}" for i in range(4)])
        block = plane.placement.blocks("f")[0]
        first = block.replicas[0]
        plane.dfs.write_side_file(
            plane._replica_path(first, "f", 0), ["flipped-bits"]
        )
        assert plane.read("f") == [f"r{i}" for i in range(4)]
        assert plane.report.block_corruptions == 1
        assert first not in block.replicas

    def test_all_replicas_corrupt_raises_loudly(self):
        plane = _plane()
        plane.on_write("f", ["a"])
        for worker in list(plane.placement.blocks("f")[0].replicas):
            plane.dfs.write_side_file(
                plane._replica_path(worker, "f", 0), ["zap"]
            )
        with pytest.raises(DFSError, match="block lost"):
            plane.read("f")

    def test_lose_replica_fault_counts_immediately(self):
        plane = _plane()
        plane.on_write("f", ["a", "b"])
        assert plane._lose_replica("f", 0, 1)
        assert plane.report.replicas_lost == 1
        assert len(plane.placement.blocks("f")[0].replicas) == 1
        assert plane.read("f") == ["a", "b"]

    def test_dead_worker_replicas_swept(self):
        pool = WorkerPool(3)
        plane = _plane(pool=pool)
        plane.on_write("f", [f"r{i}" for i in range(8)])
        victim = plane.placement.blocks("f")[0].replicas[0]
        pool.kill(victim)
        plane.sweep_dead_workers()
        assert plane.report.replicas_lost > 0
        for block in plane.placement.blocks("f"):
            assert victim not in block.replicas


# ----------------------------------------------------------------------
# Self-healing
# ----------------------------------------------------------------------
class TestRereplication:
    def test_worker_death_heals_to_target_factor(self):
        pool = WorkerPool(3)
        plane = _plane(pool=pool)
        plane.on_write("f", [f"r{i}" for i in range(8)])
        victim = plane.placement.blocks("f")[0].replicas[0]
        pool.kill(victim)
        plane.rereplicate()
        report = plane.drain_report()
        assert report.blocks_rereplicated == report.replicas_lost > 0
        assert report.rereplicated_bytes > 0
        assert report.under_replicated == 0
        for block in plane.placement.blocks("f"):
            assert len(block.replicas) == 2
            assert victim not in block.replicas
        assert plane.read("f") == [f"r{i}" for i in range(8)]

    def test_pool_too_small_surfaces_under_replication(self):
        pool = WorkerPool(2)
        plane = _plane(pool=pool)
        plane.on_write("f", ["a"])
        pool.kill(pool.active()[0])
        plane.rereplicate()
        report = plane.drain_report()
        assert report.under_replicated == 1
        assert plane.fsck().exit_code == 1

    def test_drain_report_resets(self):
        plane = _plane()
        plane.on_write("f", ["a"])
        plane._lose_replica("f", 0, 0)
        assert plane.drain_report().replicas_lost == 1
        assert plane.drain_report().replicas_lost == 0


# ----------------------------------------------------------------------
# fsck
# ----------------------------------------------------------------------
class TestFsck:
    def test_healthy_store_exits_zero(self):
        plane = _plane()
        plane.on_write("f", [f"r{i}" for i in range(8)])
        report = plane.fsck()
        assert (report.exit_code, report.problems) == (0, [])
        assert report.healthy == report.blocks == 2

    def test_corrupt_replica_exits_one_and_names_it(self):
        plane = _plane()
        plane.on_write("f", ["a"])
        worker = plane.placement.blocks("f")[0].replicas[0]
        plane.dfs.write_side_file(
            plane._replica_path(worker, "f", 0), ["zap"]
        )
        report = plane.fsck()
        assert report.exit_code == 1
        assert any(
            line.startswith("corrupt: f block 0") for line in report.problems
        )

    def test_unrecoverable_block_exits_two(self):
        plane = _plane()
        plane.on_write("f", ["a"])
        for worker in list(plane.placement.blocks("f")[0].replicas):
            plane.dfs.delete(plane._replica_path(worker, "f", 0))
        report = plane.fsck()
        assert report.exit_code == 2
        assert any(line.startswith("lost: f block 0") for line in report.problems)

    def test_repair_restores_health(self):
        plane = _plane()
        plane.on_write("f", [f"r{i}" for i in range(8)])
        worker = plane.placement.blocks("f")[0].replicas[0]
        plane.dfs.write_side_file(
            plane._replica_path(worker, "f", 0), ["zap"]
        )
        repaired = plane.fsck(repair=True)
        assert repaired.exit_code == 0
        assert repaired.repaired == 1
        assert plane.fsck().exit_code == 0


# ----------------------------------------------------------------------
# Persistence / offline audit
# ----------------------------------------------------------------------
class TestPersistence:
    def test_placement_survives_process_restart(self, tmp_path):
        root = str(tmp_path / "store")
        dfs = LocalFSDFS(root)
        plane = _plane(dfs=dfs)
        dfs.block_plane = plane
        dfs.write_file("in/f", [f"r{i}" for i in range(10)])
        persisted = dfs.read_side_file(PLACEMENT_PATH)
        assert len(persisted) == 1

        # A fresh process: new DFS handle, no pool, no factor.
        offline = BlockPlane(LocalFSDFS(root), None, None, 4)
        assert offline.replication == 2
        assert offline.placement.to_json() == plane.placement.to_json()
        assert offline.fsck().exit_code == 0
        assert offline.read("in/f") == [f"r{i}" for i in range(10)]

    def test_offline_repair_uses_persisted_worker_set(self, tmp_path):
        root = str(tmp_path / "store")
        dfs = LocalFSDFS(root)
        plane = _plane(dfs=dfs)
        dfs.block_plane = plane
        dfs.write_file("in/f", [f"r{i}" for i in range(10)])
        victim = plane.placement.blocks("in/f")[0]
        (
            tmp_path
            / "store"
            / "_blocks"
            / victim.replicas[0]
            / "in#f"
            / "b-00000"
        ).write_text("garbage\n", encoding="utf-8")

        offline = BlockPlane(LocalFSDFS(root), None, None, 4)
        assert offline.fsck().exit_code == 1
        assert BlockPlane(LocalFSDFS(root), None, None, 4).fsck(
            repair=True
        ).exit_code == 0
        assert BlockPlane(LocalFSDFS(root), None, None, 4).fsck().exit_code == 0

    def test_empty_root_is_healthy(self, tmp_path):
        plane = BlockPlane(LocalFSDFS(str(tmp_path / "empty")), None, None, 4)
        report = plane.fsck()
        assert (report.exit_code, report.blocks) == (0, 0)

    def test_explicit_factor_overrides_persisted(self, tmp_path):
        root = str(tmp_path / "store")
        dfs = LocalFSDFS(root)
        plane = _plane(dfs=dfs)
        dfs.block_plane = plane
        dfs.write_file("in/f", ["a"])
        reattached = BlockPlane(LocalFSDFS(root), WorkerPool(4), 3, 4)
        assert reattached.replication == 3
        reattached.rereplicate()
        assert len(reattached.placement.blocks("in/f")[0].replicas) == 3


# ----------------------------------------------------------------------
# Locality hints
# ----------------------------------------------------------------------
class TestSplitLocalities:
    def test_holders_and_bytes_per_split(self):
        plane = _plane()
        lines = [f"record-{i}" for i in range(8)]
        plane.on_write("in/f", lines)
        splits = [
            [("in/f", i, lines[i], len(lines[i]) + 1) for i in range(0, 4)],
            [("in/f", i, lines[i], len(lines[i]) + 1) for i in range(4, 8)],
        ]
        localities = plane.split_localities(splits)
        assert set(localities) == {0, 1}
        holders, nbytes = localities[0]
        assert holders == tuple(plane.placement.blocks("in/f")[0].replicas)
        assert nbytes == sum(len(line) + 1 for line in lines[:4])

    def test_untracked_files_are_omitted(self):
        plane = _plane()
        assert plane.split_localities([[("ghost", 0, "x", 2)]]) == {}
