"""Unit tests for chained-job workflows."""

import pytest

from repro.mapreduce.dfs import InMemoryDFS
from repro.mapreduce.engine import Cluster
from repro.mapreduce.job import MapReduceJob, hash_partitioner
from repro.mapreduce.workflow import Workflow


def _passthrough(name: str, inp: str, out: str) -> MapReduceJob:
    def mapper(key, line, ctx):
        ctx.emit(line, 1)

    def reducer(key, values, ctx):
        ctx.emit(key)

    return MapReduceJob(
        name=name,
        input_paths=[inp],
        output_path=out,
        mapper=mapper,
        reducer=reducer,
        num_reducers=2,
        partitioner=hash_partitioner,
    )


@pytest.fixture
def cluster() -> Cluster:
    c = Cluster(dfs=InMemoryDFS())
    c.dfs.write_file("in", ["r1", "r2", "r3"])
    return c


class TestWorkflow:
    def test_chained_jobs_read_prior_output(self, cluster):
        wf = Workflow(cluster)
        wf.run(_passthrough("j1", "in", "mid"))
        wf.run(_passthrough("j2", "mid", "out"))
        assert sorted(cluster.dfs.read_dir("out")) == ["r1", "r2", "r3"]

    def test_total_time_is_sum(self, cluster):
        wf = Workflow(cluster)
        r1 = wf.run(_passthrough("j1", "in", "mid"))
        r2 = wf.run(_passthrough("j2", "mid", "out"))
        assert wf.result.simulated_seconds == pytest.approx(
            r1.simulated_seconds + r2.simulated_seconds
        )

    def test_shuffled_records_aggregate(self, cluster):
        wf = Workflow(cluster)
        wf.run_all(
            [_passthrough("j1", "in", "mid"), _passthrough("j2", "mid", "out")]
        )
        assert wf.result.shuffled_records == 6

    def test_counters_merged(self, cluster):
        wf = Workflow(cluster)
        wf.run_all(
            [_passthrough("j1", "in", "mid"), _passthrough("j2", "mid", "out")]
        )
        assert wf.result.counters.engine("map_input_records") == 6

    def test_job_lookup(self, cluster):
        wf = Workflow(cluster)
        wf.run(_passthrough("j1", "in", "mid"))
        assert wf.result.job("j1").job_name == "j1"
        with pytest.raises(KeyError):
            wf.result.job("nope")

    def test_final_output_path(self, cluster):
        wf = Workflow(cluster)
        with pytest.raises(ValueError):
            __ = wf.result.final_output_path
        wf.run(_passthrough("j1", "in", "mid"))
        assert wf.result.final_output_path == "mid"
