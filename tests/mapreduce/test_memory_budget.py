"""Bounded-memory execution at the engine level.

The tentpole contract: a ``memory_budget`` small enough to force spills
changes *nothing observable* except the new ``spill*`` telemetry and
the non-canonical ``spill_overhead_s`` cost bucket — part files,
canonical counters and canonical simulated seconds stay byte-identical
to the unbounded run, on every executor.
"""

from __future__ import annotations

import pytest

from repro.errors import JobError
from repro.mapreduce.counters import C
from repro.mapreduce.dfs import InMemoryDFS
from repro.mapreduce.engine import Cluster
from repro.mapreduce.job import MapReduceJob, hash_partitioner

#: Forces several spills per map task on the workload below.
TINY_BUDGET = 256

EXECUTORS = [("serial", 1), ("thread", 2), ("process", 2)]


def _word_count_job(combiner=None, reducer=True) -> MapReduceJob:
    def mapper(key, line, ctx):
        for word in line.split():
            # Map-only jobs must emit string values; "1" sums fine too.
            ctx.emit(word, "1")

    def reduce_fn(word, counts, ctx):
        ctx.emit(f"{word}\t{sum(int(c) for c in counts)}")

    return MapReduceJob(
        name="wc",
        input_paths=["in"],
        output_path="out",
        mapper=mapper,
        reducer=reduce_fn if reducer else None,
        combiner=combiner,
        num_reducers=3,
        partitioner=hash_partitioner,
    )


def _input_lines():
    # Repetitive words -> duplicate shuffle keys, so the merge has to
    # reproduce stable (emission-order) ties, not just sort keys.
    return [f"w{i % 17} w{i % 5} w{i % 17} common" for i in range(120)]


def _run(budget, *, executor="serial", workers=1, combiner=None, reducer=True):
    cluster = Cluster(
        dfs=InMemoryDFS(),
        executor=executor,
        num_workers=workers,
        memory_budget=budget,
    )
    cluster.dfs.write_file("in", _input_lines())
    result = cluster.run_job(_word_count_job(combiner=combiner, reducer=reducer))
    output = {
        path: tuple(cluster.dfs.read_file(path))
        for path in cluster.dfs.list_dir("out")
    }
    return cluster, result, output


def _canonical(counters) -> dict:
    return {
        name: value
        for name, value in counters.as_dict()[C.GROUP_ENGINE].items()
        if not name.startswith("spill")
    }


class TestBudgetedEquivalence:
    @pytest.mark.parametrize(("executor", "workers"), EXECUTORS)
    def test_byte_identical_under_pressure(self, executor, workers):
        __, ref, ref_output = _run(None)
        cluster, result, output = _run(
            TINY_BUDGET, executor=executor, workers=workers
        )
        eng = result.counters.engine
        assert eng(C.SPILLED_RECORDS) > 0
        assert eng(C.SPILL_FILES) > 0
        assert output == ref_output
        assert _canonical(result.counters) == _canonical(ref.counters)
        # Canonical simulated seconds unchanged; the spill I/O shows up
        # only in the non-canonical bucket.
        assert result.cost.total_s == ref.cost.total_s
        assert result.cost.spill_overhead_s > 0
        assert ref.cost.spill_overhead_s == 0
        # Spill side files are cleaned up after the job commits.
        assert not cluster.dfs.list_dir("_spill/wc")

    def test_spill_telemetry_in_trace(self):
        from repro.obs.trace import TraceRecorder

        recorder = TraceRecorder()
        cluster = Cluster(
            dfs=InMemoryDFS(), memory_budget=TINY_BUDGET, recorder=recorder
        )
        cluster.dfs.write_file("in", _input_lines())
        result = cluster.run_job(_word_count_job())
        job_span = next(
            s for s in recorder.spans if s.cat == "job" and s.name == "job:wc"
        )
        assert job_span.args["spilled_records"] == result.counters.engine(
            C.SPILLED_RECORDS
        )
        assert job_span.args["spill_files"] == result.counters.engine(
            C.SPILL_FILES
        )
        assert job_span.args["spill_overhead_s"] == result.cost.spill_overhead_s

    def test_dfs_byte_counters_stay_canonical(self):
        """Spill runs travel as unaccounted side files: the canonical
        DFS read/write counters must not see them."""
        __, ref, __out = _run(None)
        __, result, __out2 = _run(TINY_BUDGET)
        assert result.counters.engine(C.DFS_BYTES_WRITTEN) == ref.counters.engine(
            C.DFS_BYTES_WRITTEN
        )
        assert result.counters.engine(C.DFS_BYTES_READ) == ref.counters.engine(
            C.DFS_BYTES_READ
        )


class TestBudgetedCombiner:
    def test_combiner_job_spills_then_unspills(self):
        def combiner(word, counts):
            return [str(sum(int(c) for c in counts))]

        __, ref, ref_output = _run(None, combiner=combiner)
        cluster, result, output = _run(TINY_BUDGET, combiner=combiner)
        assert output == ref_output
        # The spills happened (telemetry says so) but the combiner path
        # restores in-memory buckets, so no side files are staged.
        assert result.counters.engine(C.SPILLED_RECORDS) > 0
        assert _canonical(result.counters) == _canonical(ref.counters)
        assert not cluster.dfs.list_dir("_spill/wc")


class TestBudgetScope:
    def test_map_only_jobs_never_spill(self):
        """No reduce and no combiner means no sort buffer to bound —
        Hadoop spills the sort buffer, not map output itself."""
        __, result, __out = _run(TINY_BUDGET, reducer=False)
        assert result.counters.engine(C.SPILLED_RECORDS) == 0

    def test_non_positive_budget_rejected(self):
        with pytest.raises(JobError, match="memory_budget must be positive"):
            Cluster(dfs=InMemoryDFS(), memory_budget=0)

    def test_unbounded_runs_emit_no_spill_counters(self):
        __, result, __out = _run(None)
        counters = result.counters.as_dict()[C.GROUP_ENGINE]
        assert "spilled_records" not in counters
        assert "spill_files" not in counters
