"""Unit tests for counter groups."""

from repro.mapreduce.counters import C, Counters


class TestCounters:
    def test_default_zero(self):
        assert Counters().get("g", "n") == 0

    def test_add_and_get(self):
        c = Counters()
        c.add("g", "n", 3)
        c.add("g", "n")
        assert c.get("g", "n") == 4

    def test_negative_increment(self):
        c = Counters()
        c.add("g", "n", -2)
        assert c.get("g", "n") == -2

    def test_engine_shorthand(self):
        c = Counters()
        c.add(C.GROUP_ENGINE, C.MAP_INPUT_RECORDS, 5)
        assert c.engine(C.MAP_INPUT_RECORDS) == 5

    def test_merge(self):
        a, b = Counters(), Counters()
        a.add("g", "x", 1)
        b.add("g", "x", 2)
        b.add("h", "y", 3)
        a.merge(b)
        assert a.get("g", "x") == 3
        assert a.get("h", "y") == 3
        # merge does not mutate the source
        assert b.get("g", "x") == 2

    def test_groups_iteration_sorted(self):
        c = Counters()
        c.add("zz", "a", 1)
        c.add("aa", "b", 2)
        assert [g for g, __ in c.groups()] == ["aa", "zz"]

    def test_as_dict_snapshot(self):
        c = Counters()
        c.add("g", "n", 1)
        snap = c.as_dict()
        snap["g"]["n"] = 99
        assert c.get("g", "n") == 1

    def test_pickle_round_trip(self):
        """Per-task counter shards cross the process-executor boundary."""
        import pickle

        c = Counters()
        c.add("g", "x", 5)
        c.add("h", "y", -2)
        clone = pickle.loads(pickle.dumps(c))
        assert clone.as_dict() == c.as_dict()
        clone.add("g", "x", 1)  # still a live, mergeable Counters
        assert clone.get("g", "x") == 6 and c.get("g", "x") == 5
