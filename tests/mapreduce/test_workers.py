"""Worker failure domains: named workers, loss, blacklists, elasticity.

The pool itself is pure bookkeeping (deterministic assignment over the
active set), so the unit tests pin its state machine; the engine tests
drive whole jobs through ``fail-worker``/``join-worker`` plans and
assert the Hadoop semantics — in-flight attempts lost uncharged,
committed map outputs invalidated and re-executed, blacklisting after K
strikes, elastic joins, and a clean :class:`NoActiveWorkersError` only
when every worker is gone — all without perturbing canonical outputs.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import FaultPlanError, JobError, NoActiveWorkersError
from repro.mapreduce.counters import C
from repro.mapreduce.dfs import InMemoryDFS
from repro.mapreduce.engine import Cluster
from repro.mapreduce.faults import FaultPlan, FaultSpec, RetryPolicy
from repro.mapreduce.job import MapReduceJob, hash_partitioner
from repro.mapreduce.workers import WorkerPool
from repro.obs.ledger import MemorySink, RunLedger


# ----------------------------------------------------------------------
# Pool state machine
# ----------------------------------------------------------------------
class TestWorkerPool:
    def test_named_workers_in_creation_order(self):
        pool = WorkerPool(3)
        assert pool.active() == ["w0", "w1", "w2"]

    def test_needs_at_least_one_worker(self):
        with pytest.raises(JobError, match="at least 1 worker"):
            WorkerPool(0)

    def test_assignment_is_deterministic_round_robin(self):
        pool = WorkerPool(3)
        assert [pool.assign(i, 0) for i in range(5)] == [
            "w0", "w1", "w2", "w0", "w1",
        ]
        # A retry moves to the next worker — Hadoop avoiding the node
        # that just failed the task.
        assert pool.assign(0, 1) != pool.assign(0, 0)

    def test_kill_removes_from_rotation(self):
        pool = WorkerPool(3)
        assert pool.kill("w1")
        assert pool.active() == ["w0", "w2"]
        assert pool.dead() == ["w1"]
        assert not pool.kill("w1")  # already dead: nothing new to lose

    def test_blacklist_removes_capacity_but_not_liveness(self):
        pool = WorkerPool(2)
        assert pool.blacklist("w0")
        assert pool.active() == ["w1"]
        assert pool.blacklisted() == ["w0"]
        assert pool.dead() == []

    def test_join_appends_fresh_name_never_reuses(self):
        pool = WorkerPool(2)
        pool.kill("w1")
        assert pool.join() == "w2"
        assert pool.join("w1") is None  # a dead name stays dead
        assert pool.active() == ["w0", "w2"]

    def test_all_dead_raises_no_active_workers(self):
        pool = WorkerPool(2)
        pool.kill("w0")
        pool.blacklist("w1")
        with pytest.raises(NoActiveWorkersError, match="dead or blacklisted"):
            pool.assign(0, 0)

    def test_unknown_worker_rejected(self):
        with pytest.raises(JobError, match="unknown worker"):
            WorkerPool(1).kill("w9")


# ----------------------------------------------------------------------
# Fault-spec validation and plan round-trips (satellite: schema checks)
# ----------------------------------------------------------------------
class TestWorkerFaultSpecs:
    def test_fail_worker_rejects_write_phase(self):
        with pytest.raises(JobError, match="phase"):
            FaultSpec(kind="fail-worker", phase="write", index=0, worker="w0")

    def test_at_time_fail_worker_needs_explicit_victim(self):
        with pytest.raises(JobError, match="explicit worker"):
            FaultSpec(kind="fail-worker", phase="map", index=0, at_s=5.0)

    def test_silent_only_for_fail_worker(self):
        with pytest.raises(JobError, match="silent"):
            FaultSpec(kind="join-worker", phase="map", index=0, silent=True)

    def test_non_worker_kinds_reject_worker_fields(self):
        with pytest.raises(JobError):
            FaultSpec(kind="fail", phase="map", index=0, worker="w0")
        with pytest.raises(JobError):
            FaultSpec(kind="fail", phase="map", index=0, at_s=1.0)

    def test_plan_round_trips_through_json(self, tmp_path):
        plan = (
            FaultPlan(seed=7)
            .fail_worker("w1", phase="map", index=2, attempt=1, silent=True)
            .fail_worker("w2", at_s=30.0)
            .join_worker(phase="reduce", index=0)
        )
        path = tmp_path / "plan.json"
        plan.dump(str(path))
        loaded = FaultPlan.load(str(path))
        assert loaded.to_dict() == plan.to_dict()
        assert loaded.has_worker_faults
        assert [s.kind for s in loaded.worker_specs()] == [
            "fail-worker", "fail-worker", "join-worker",
        ]

    def test_load_names_path_and_offending_key(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps({"specs": [{"kind": "fail-worker", "wrkr": "w0"}]})
        )
        with pytest.raises(FaultPlanError) as err:
            FaultPlan.load(str(path))
        message = str(err.value)
        assert str(path) in message
        assert "'wrkr'" in message

    def test_unknown_kind_is_one_line_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps({"specs": [{"kind": "explode-rack", "phase": "map", "index": 0}]})
        )
        with pytest.raises(FaultPlanError) as err:
            FaultPlan.load(str(path))
        assert "explode-rack" in str(err.value)
        assert "\n" not in str(err.value)


# ----------------------------------------------------------------------
# Engine scenarios
# ----------------------------------------------------------------------
def _job(name="wrk", out="out") -> MapReduceJob:
    def mapper(key, line, ctx):
        for word in line.split():
            ctx.emit(word, "1")

    def reducer(word, counts, ctx):
        ctx.emit(f"{word}\t{len(counts)}")

    return MapReduceJob(
        name=name,
        input_paths=["in"],
        output_path=out,
        mapper=mapper,
        reducer=reducer,
        num_reducers=3,
        partitioner=hash_partitioner,
    )


def _cluster(executor="serial", **kwargs) -> Cluster:
    cluster = Cluster(
        dfs=InMemoryDFS(),
        executor=executor,
        num_workers=4,
        split_records=10,
        **kwargs,
    )
    cluster.dfs.write_file(
        "in", [f"w{i % 7} x{i % 3} y{i % 11}" for i in range(100)]
    )
    return cluster


def _output(cluster: Cluster) -> dict[str, tuple[str, ...]]:
    return {
        path: tuple(cluster.dfs.read_file(path))
        for path in cluster.dfs.list_dir("out")
    }


class TestEngineWorkerLoss:
    @pytest.fixture(scope="class")
    def reference(self):
        cluster = _cluster()
        result = cluster.run_job(_job())
        return result, _output(cluster)

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_map_phase_death_reexecutes_committed_outputs(
        self, executor, reference
    ):
        ref, ref_output = reference
        # Round 1 commits most splits and fails task 0; task 0's retry
        # (round 2) kills w1, so the outputs w1 committed in round 1
        # are invalidated and re-dispatched *within* the map phase.
        plan = (
            FaultPlan()
            .fail_task("map", 0, attempt=0)
            .fail_worker("w1", phase="map", index=0, attempt=1)
        )
        cluster = _cluster(
            executor, fault_plan=plan, retry=RetryPolicy(max_attempts=3)
        )
        result = cluster.run_job(_job())
        eng = result.counters.engine
        assert _output(cluster) == ref_output
        assert result.cost.total_s == ref.cost.total_s
        assert eng(C.WORKER_FAILURES) == 1
        # w1 owned committed splits when it died; they re-executed.
        assert eng(C.MAP_OUTPUT_LOST) >= 1
        assert eng(C.TASKS_REEXECUTED) == eng(C.MAP_OUTPUT_LOST)
        assert result.cost.recovery_overhead_s > 0
        assert cluster.worker_pool.dead() == ["w1"]

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_reduce_phase_death_invalidates_upstream_maps(
        self, executor, reference
    ):
        ref, ref_output = reference
        plan = FaultPlan().fail_worker(
            "w0", phase="reduce", index=0, attempt=0, silent=True
        )
        cluster = _cluster(
            executor, fault_plan=plan, retry=RetryPolicy(max_attempts=3)
        )
        result = cluster.run_job(_job())
        eng = result.counters.engine
        assert _output(cluster) == ref_output
        assert result.cost.total_s == ref.cost.total_s
        # w0 owned committed map outputs: losing it mid-reduce forces
        # upstream map re-execution (Hadoop's lost-TaskTracker path).
        assert eng(C.MAP_OUTPUT_LOST) >= 1
        # Silent death: detection charged at the heartbeat interval.
        assert result.cost.recovery_overhead_s >= (
            cluster.retry.heartbeat_interval_s
        )

    def test_lost_attempts_are_never_charged(self):
        plan = FaultPlan().fail_worker("w1", phase="map", index=1, attempt=0)
        cluster = _cluster(fault_plan=plan, retry=RetryPolicy(max_attempts=2))
        result = cluster.run_job(_job())
        # max_attempts=2 still absorbs the loss: worker_lost outcomes do
        # not burn attempts the way charged failures do.
        assert result.counters.engine(C.TASK_FAILURES) == 0
        stats = result.map_tasks
        lost = [
            a
            for s in stats
            for a in s.attempts
            if a.outcome == "worker_lost"
        ]
        assert lost and all("died" in a.error for a in lost)

    def test_blacklist_after_k_strikes(self):
        plan = (
            FaultPlan()
            .fail_task("map", 0, attempt=0)
            .fail_task("map", 0, attempt=1)
        )
        cluster = _cluster(
            fault_plan=plan,
            retry=RetryPolicy(max_attempts=4, blacklist_after=1),
        )
        result = cluster.run_job(_job())
        eng = result.counters.engine
        assert eng(C.WORKERS_BLACKLISTED) == 2
        assert len(cluster.worker_pool.blacklisted()) == 2
        # Blacklisting never invalidates committed outputs.
        assert eng(C.MAP_OUTPUT_LOST) == 0

    def test_elastic_join_adds_capacity(self, reference):
        __, ref_output = reference
        plan = (
            FaultPlan()
            .fail_worker("w3", phase="map", index=0, attempt=0)
            .join_worker(phase="reduce", index=0, attempt=0)
        )
        cluster = _cluster(fault_plan=plan, retry=RetryPolicy(max_attempts=3))
        result = cluster.run_job(_job())
        assert _output(cluster) == ref_output
        assert result.counters.engine(C.WORKERS_JOINED) == 1
        snapshot = cluster.worker_pool.snapshot()
        assert "w4" in snapshot["active"]
        assert snapshot["dead"] == ["w3"]

    def test_every_worker_dead_fails_cleanly(self):
        plan = FaultPlan()
        for name in ("w0", "w1", "w2", "w3"):
            plan.fail_worker(name, phase="map", index=0, attempt=0)
        cluster = _cluster(fault_plan=plan, retry=RetryPolicy(max_attempts=3))
        with pytest.raises(NoActiveWorkersError, match="every worker"):
            cluster.run_job(_job())

    def test_at_time_spec_fires_between_jobs(self):
        # The simulated clock advances by each job's canonical seconds;
        # an at_s past job 1's cost fires at job 2's first boundary.
        plan = FaultPlan().fail_worker("w1", at_s=1.0)
        cluster = _cluster(fault_plan=plan, retry=RetryPolicy(max_attempts=3))
        first = cluster.run_job(_job(name="first"))
        assert first.counters.engine(C.WORKER_FAILURES) == 0
        assert first.cost.total_s > 1.0
        second = cluster.run_job(_job(name="second", out="out2"))
        assert second.counters.engine(C.WORKER_FAILURES) == 1
        assert cluster.worker_pool.dead() == ["w1"]

    def test_pool_state_persists_across_jobs(self):
        plan = FaultPlan().fail_worker("w2", phase="map", index=0, attempt=0)
        cluster = _cluster(fault_plan=plan, retry=RetryPolicy(max_attempts=3))
        cluster.run_job(_job(name="one"))
        assert cluster.worker_pool.dead() == ["w2"]
        second = cluster.run_job(_job(name="two", out="out2"))
        # The one-shot spec already fired: no second death, and the
        # pool still remembers the first.
        assert second.counters.engine(C.WORKER_FAILURES) == 0
        assert cluster.worker_pool.dead() == ["w2"]

    def test_disengaged_cluster_emits_no_worker_telemetry(self):
        plan = FaultPlan().fail_task("map", 0, attempt=0)
        cluster = _cluster(fault_plan=plan, retry=RetryPolicy(max_attempts=2))
        result = cluster.run_job(_job())
        eng = result.counters.engine
        assert cluster.worker_pool is None
        for name in (
            C.WORKER_FAILURES,
            C.WORKERS_BLACKLISTED,
            C.WORKERS_JOINED,
            C.MAP_OUTPUT_LOST,
            C.TASKS_REEXECUTED,
        ):
            assert eng(name) == 0
        assert result.cost.recovery_overhead_s == 0.0


class TestReplayDeterminism:
    def _ledger_events(self, executor="serial"):
        sink = MemorySink()
        plan = (
            FaultPlan()
            .fail_worker("w1", phase="map", index=1, attempt=0)
            .fail_worker("w2", phase="reduce", index=0, attempt=0, silent=True)
            .join_worker(phase="reduce", index=1, attempt=0)
        )
        cluster = _cluster(
            executor,
            fault_plan=plan,
            retry=RetryPolicy(max_attempts=3),
            ledger=RunLedger(sink),
        )
        cluster.run_job(_job())
        events = [dict(e) for e in sink.events]
        for event in events:  # wall-time fields vary run to run
            event.pop("t_s", None)
            event.pop("duration_s", None)
        return events

    def test_seeded_plan_replays_identical_schedule(self):
        first = self._ledger_events()
        second = self._ledger_events()
        assert first == second
        kinds = [
            e["type"] for e in first if e["type"].startswith(("worker", "output"))
        ]
        # w1 dies in map round 1: its outputs are in-flight, not committed,
        # so there is nothing to invalidate.  In the reduce phase the join
        # (a trigger-pass action) enacts before the queued w2 death, and
        # w2's death invalidates the map outputs it committed earlier.
        assert kinds == [
            "worker_lost",
            "worker_joined",
            "worker_lost",
            "output_invalidated",
        ]
