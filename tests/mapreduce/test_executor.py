"""Unit tests for the pluggable task executors."""

import os
import threading
import time

import pytest

import repro.mapreduce.executor as executor_mod
from repro.errors import JobError
from repro.mapreduce.executor import (
    EXECUTORS,
    ProcessExecutor,
    SerialExecutor,
    TaskExecutor,
    ThreadExecutor,
    default_workers,
    make_executor,
)

ALL_EXECUTORS = sorted(EXECUTORS)


def square_worker(payload, index):
    return payload["base"] + index * index


def pid_worker(payload, index):
    return os.getpid()


def failing_worker(payload, index):
    if index == payload:
        raise JobError(f"task {index} failed")
    return index


class TestFactory:
    def test_known_names(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        assert isinstance(make_executor("thread", 2), ThreadExecutor)
        assert isinstance(make_executor("process", 2), ProcessExecutor)

    def test_unknown_name_raises(self):
        with pytest.raises(JobError, match="unknown executor"):
            make_executor("gpu")

    def test_registry_covers_all_backends(self):
        assert set(EXECUTORS) == {"serial", "thread", "process"}
        for cls in EXECUTORS.values():
            assert issubclass(cls, TaskExecutor)

    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_none_workers_defaults_to_cpus(self):
        assert make_executor("thread", None).num_workers == default_workers()
        assert make_executor("process", 0).num_workers == default_workers()


class TestRunPhase:
    @pytest.mark.parametrize("name", ALL_EXECUTORS)
    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_results_ordered_by_task_id(self, name, workers):
        ex = make_executor(name, workers)
        results = ex.run_phase(square_worker, 7, {"base": 100})
        assert results == [100 + i * i for i in range(7)]

    @pytest.mark.parametrize("name", ALL_EXECUTORS)
    def test_zero_tasks(self, name):
        assert make_executor(name, 2).run_phase(square_worker, 0, {"base": 0}) == []

    @pytest.mark.parametrize("name", ALL_EXECUTORS)
    def test_single_task(self, name):
        assert make_executor(name, 4).run_phase(square_worker, 1, {"base": 5}) == [5]

    @pytest.mark.parametrize("name", ALL_EXECUTORS)
    @pytest.mark.parametrize("workers", [1, 4])
    def test_worker_error_propagates(self, name, workers):
        ex = make_executor(name, workers)
        with pytest.raises(JobError, match="task 2 failed"):
            ex.run_phase(failing_worker, 5, 2)

    def test_more_workers_than_tasks(self):
        ex = make_executor("process", 64)
        assert ex.run_phase(square_worker, 3, {"base": 0}) == [0, 1, 4]

    def test_process_executor_forks(self):
        """With >1 worker and >1 task, work really leaves this process."""
        pids = set(make_executor("process", 2).run_phase(pid_worker, 4, None))
        assert os.getpid() not in pids

    def test_thread_executor_shares_process(self):
        pids = set(make_executor("thread", 2).run_phase(pid_worker, 4, None))
        assert pids == {os.getpid()}

    def test_process_single_worker_stays_inline(self):
        pids = set(make_executor("process", 1).run_phase(pid_worker, 4, None))
        assert pids == {os.getpid()}

    def test_payload_shared_not_copied_in_threads(self):
        payload = {"base": 1}
        results = make_executor("thread", 4).run_phase(
            lambda p, i: p is payload, 4, payload
        )
        assert all(results)

    def test_closure_worker_survives_fork(self):
        """Fork inherits closures: no pickling of the worker or payload."""
        grid = {"cells": [1, 2, 3]}

        def worker(payload, index):
            return payload["cells"][index] * 10

        assert make_executor("process", 2).run_phase(worker, 3, grid) == [10, 20, 30]


class TestThreadCancelOnFailure:
    def test_failure_cancels_queued_tail(self):
        """A failing task must stop the phase without first running every
        still-queued task to completion (regression: the seed executor
        awaited ALL_COMPLETED, so a long tail ran pointlessly after an
        early failure)."""
        started: list[int] = []
        gate = threading.Event()

        def worker(payload, index):
            started.append(index)
            if index == 0:
                gate.wait(5.0)  # hold a worker slot until task 1 fails
                raise JobError("task 0 failed")
            if index == 1:
                time.sleep(0.05)
                gate.set()
                raise JobError("task 1 failed")
            time.sleep(0.01)
            return index

        with pytest.raises(JobError, match="task 0 failed"):
            # 2 workers, 24 tasks: 0 and 1 occupy the pool; once they
            # fail, the remaining 22 must be cancelled, not drained.
            ThreadExecutor(num_workers=2).run_phase(worker, 24, None)
        assert len(started) < 24

    def test_lowest_failing_task_still_raises(self):
        """Cancellation must not change *which* error surfaces."""
        with pytest.raises(JobError, match="task 2 failed"):
            ThreadExecutor(num_workers=4).run_phase(failing_worker, 16, 2)


class TestForkStateIsolation:
    """_FORK_STATE is published only inside the locked fork window and
    restored afterwards, so nested or concurrent run_phase calls can
    never fork a pool against another call's payload."""

    def test_state_restored_after_phase(self):
        sentinel = ("outer-worker", {"outer": True})
        executor_mod._FORK_STATE = sentinel
        try:
            result = ProcessExecutor(num_workers=2).run_phase(
                square_worker, 4, {"base": 7}
            )
            assert result == [7, 8, 11, 16]
            assert executor_mod._FORK_STATE is sentinel
        finally:
            executor_mod._FORK_STATE = None

    def test_nested_run_phase_keeps_outer_payload(self):
        """Process phases forked from inside an outer thread phase's
        workers (two forks racing in one process) must each see their
        own payload.  Pool workers are daemonic, so process-in-process
        nesting is structurally impossible — thread-outer is the real
        nested shape."""

        def inner(payload, index):
            return payload + index

        def outer(payload, index):
            base = ProcessExecutor(num_workers=2).run_phase(inner, 2, index * 100)
            return sum(base)

        results = ThreadExecutor(num_workers=3).run_phase(outer, 3, None)
        assert results == [1, 201, 401]

    def test_concurrent_clusters_do_not_cross_payloads(self):
        """Two threads forking process pools at once: each phase must see
        its own payload (the lock serializes the set-fork-restore
        window)."""
        errors: list[str] = []
        barrier = threading.Barrier(2, timeout=10.0)

        def drive(tag: int) -> None:
            def worker(payload, index):
                return (payload, index)

            for round_no in range(4):
                barrier.wait()
                got = ProcessExecutor(num_workers=2).run_phase(worker, 3, tag)
                want = [(tag, i) for i in range(3)]
                if got != want:
                    errors.append(f"thread {tag} round {round_no}: {got}")

        threads = [threading.Thread(target=drive, args=(t,)) for t in (1, 2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
        assert errors == []


class TestPhaseSessions:
    @pytest.mark.parametrize("name", ["thread", "process"])
    def test_streaming_results_tagged(self, name):
        ex = make_executor(name, 2)
        session = ex.open_session(square_worker, {"base": 100})
        assert session is not None
        with session:
            for tag in range(4):
                session.submit(tag)
            seen = {}
            while len(seen) < 4:
                item = session.next_done(timeout=5.0)
                assert item is not None
                tag, result = item
                seen[tag] = result
        assert seen == {i: 100 + i * i for i in range(4)}

    @pytest.mark.parametrize("name", ALL_EXECUTORS)
    def test_single_worker_has_no_session(self, name):
        assert make_executor(name, 1).open_session(square_worker, None) is None

    def test_serial_never_opens_a_session(self):
        assert SerialExecutor().open_session(square_worker, None) is None

    @pytest.mark.parametrize("name", ["thread", "process"])
    def test_next_done_with_nothing_outstanding_raises(self, name):
        session = make_executor(name, 2).open_session(square_worker, None)
        with session:
            with pytest.raises(JobError, match="no outstanding"):
                session.next_done()

    @pytest.mark.parametrize("name", ["thread", "process"])
    def test_close_abandons_stragglers(self, name):
        """Leaving the with-block discards unfinished invocations — the
        speculative-loser semantics — without hanging."""

        def slow(payload, tag):
            time.sleep(30.0)
            return tag

        ex = make_executor(name, 2)
        started = time.monotonic()
        with ex.open_session(slow, None) as session:
            session.submit(0)
            session.submit(1)
            assert session.next_done(timeout=0.05) is None
        assert time.monotonic() - started < 10.0


# Module-level twins of Rect/TaggedRect *without* the compact
# ``__getstate__`` forms: the baseline the packing regression test
# compares against (module level so worker pickling can import them).
import dataclasses as _dataclasses


@_dataclasses.dataclass(frozen=True, slots=True)
class _PlainRect:
    x: float
    y: float
    l: float
    b: float


@_dataclasses.dataclass(frozen=True, slots=True)
class _PlainTagged:
    dataset: str
    rid: int
    rect: _PlainRect
    marked: bool


class TestTaskResultPacking:
    """Protocol-5 IPC packing: smaller payloads, identical results."""

    @staticmethod
    def _segments(rect_cls, tagged_cls):
        """A result shaped like a real map task's: segments of tagged rects."""
        np = pytest.importorskip("numpy")
        from repro.mapreduce.job import BucketSegment

        segments = []
        for seg in range(4):
            keys = np.arange(seg * 100, seg * 100 + 100, dtype=np.int64)
            values = [
                tagged_cls(
                    dataset=f"R{seg % 3 + 1}",
                    rid=seg * 100 + i,
                    rect=rect_cls(float(i), float(i + 1), 0.5, 0.25),
                    marked=bool(i % 2),
                )
                for i in range(100)
            ]
            segments.append(BucketSegment(keys, values))
        return {"segments": segments, "counters": {"MAP_OUTPUT_RECORDS": 400}}

    def test_roundtrip_preserves_result(self):
        from repro.data.io import TaggedRect
        from repro.geometry.rectangle import Rect
        from repro.mapreduce.executor import pack_task_result, unpack_task_result

        result = self._segments(Rect, TaggedRect)
        restored = unpack_task_result(pack_task_result(result))
        assert restored["counters"] == result["counters"]
        for orig, back in zip(result["segments"], restored["segments"]):
            assert back.keys.tolist() == orig.keys.tolist()
            assert back.values == orig.values

    def test_compact_state_shrinks_task_payload(self):
        """The compact ``__getstate__`` forms must keep the task payload
        no bigger than the pre-PR wire format.  Two guards: (1) the
        memoised ``_csv`` codec cache never ships — packing a result whose
        rectangles have all been encoded yields byte-for-byte the same
        payload size as packing fresh ones; (2) the 4-tuple state still
        undercuts the default dataclass state (``_PlainRect``/
        ``_PlainTagged`` reconstruct it for the same logical payload)."""
        from repro.data.io import TaggedRect, encode_tagged
        from repro.geometry.rectangle import Rect
        from repro.mapreduce.executor import pack_task_result

        def total(packed):
            data, buffers = packed
            return len(data) + sum(len(b) for b in buffers)

        result = self._segments(Rect, TaggedRect)
        fresh = total(pack_task_result(result))
        for segment in result["segments"]:
            for tagged in segment.values:
                encode_tagged(tagged)  # populates tagged.rect._csv
        cached = total(pack_task_result(result))
        assert cached == fresh
        plain = total(pack_task_result(self._segments(_PlainRect, _PlainTagged)))
        assert fresh < plain

    def test_packed_no_larger_than_pool_default(self):
        """data + out-of-band buffers never exceed what the pool's
        default ForkingPickler protocol would have shipped in one blob."""
        from multiprocessing.reduction import ForkingPickler

        from repro.data.io import TaggedRect
        from repro.geometry.rectangle import Rect
        from repro.mapreduce.executor import pack_task_result

        result = self._segments(Rect, TaggedRect)
        data, buffers = pack_task_result(result)
        packed_bytes = len(data) + sum(len(b) for b in buffers)
        default_bytes = len(bytes(ForkingPickler.dumps(result)))
        assert packed_bytes <= default_bytes

    def test_process_executor_ships_packed_results(self):
        ex = ProcessExecutor(num_workers=2)
        results = ex.run_phase(square_worker, 4, {"base": 3})
        assert results == [3, 4, 7, 12]
