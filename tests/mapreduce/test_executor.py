"""Unit tests for the pluggable task executors."""

import os

import pytest

from repro.errors import JobError
from repro.mapreduce.executor import (
    EXECUTORS,
    ProcessExecutor,
    SerialExecutor,
    TaskExecutor,
    ThreadExecutor,
    default_workers,
    make_executor,
)

ALL_EXECUTORS = sorted(EXECUTORS)


def square_worker(payload, index):
    return payload["base"] + index * index


def pid_worker(payload, index):
    return os.getpid()


def failing_worker(payload, index):
    if index == payload:
        raise JobError(f"task {index} failed")
    return index


class TestFactory:
    def test_known_names(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        assert isinstance(make_executor("thread", 2), ThreadExecutor)
        assert isinstance(make_executor("process", 2), ProcessExecutor)

    def test_unknown_name_raises(self):
        with pytest.raises(JobError, match="unknown executor"):
            make_executor("gpu")

    def test_registry_covers_all_backends(self):
        assert set(EXECUTORS) == {"serial", "thread", "process"}
        for cls in EXECUTORS.values():
            assert issubclass(cls, TaskExecutor)

    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_none_workers_defaults_to_cpus(self):
        assert make_executor("thread", None).num_workers == default_workers()
        assert make_executor("process", 0).num_workers == default_workers()


class TestRunPhase:
    @pytest.mark.parametrize("name", ALL_EXECUTORS)
    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_results_ordered_by_task_id(self, name, workers):
        ex = make_executor(name, workers)
        results = ex.run_phase(square_worker, 7, {"base": 100})
        assert results == [100 + i * i for i in range(7)]

    @pytest.mark.parametrize("name", ALL_EXECUTORS)
    def test_zero_tasks(self, name):
        assert make_executor(name, 2).run_phase(square_worker, 0, {"base": 0}) == []

    @pytest.mark.parametrize("name", ALL_EXECUTORS)
    def test_single_task(self, name):
        assert make_executor(name, 4).run_phase(square_worker, 1, {"base": 5}) == [5]

    @pytest.mark.parametrize("name", ALL_EXECUTORS)
    @pytest.mark.parametrize("workers", [1, 4])
    def test_worker_error_propagates(self, name, workers):
        ex = make_executor(name, workers)
        with pytest.raises(JobError, match="task 2 failed"):
            ex.run_phase(failing_worker, 5, 2)

    def test_more_workers_than_tasks(self):
        ex = make_executor("process", 64)
        assert ex.run_phase(square_worker, 3, {"base": 0}) == [0, 1, 4]

    def test_process_executor_forks(self):
        """With >1 worker and >1 task, work really leaves this process."""
        pids = set(make_executor("process", 2).run_phase(pid_worker, 4, None))
        assert os.getpid() not in pids

    def test_thread_executor_shares_process(self):
        pids = set(make_executor("thread", 2).run_phase(pid_worker, 4, None))
        assert pids == {os.getpid()}

    def test_process_single_worker_stays_inline(self):
        pids = set(make_executor("process", 1).run_phase(pid_worker, 4, None))
        assert pids == {os.getpid()}

    def test_payload_shared_not_copied_in_threads(self):
        payload = {"base": 1}
        results = make_executor("thread", 4).run_phase(
            lambda p, i: p is payload, 4, payload
        )
        assert all(results)

    def test_closure_worker_survives_fork(self):
        """Fork inherits closures: no pickling of the worker or payload."""
        grid = {"cells": [1, 2, 3]}

        def worker(payload, index):
            return payload["cells"][index] * 10

        assert make_executor("process", 2).run_phase(worker, 3, grid) == [10, 20, 30]
