"""Spill primitives: run format, external merge, budgeted map context.

The memory-governance invariant under test: merging sorted runs on
``(sort_key(key), map_task_id, seq)`` reproduces the unbounded path's
stable sort exactly, for any placement of the spill points.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import JobError
from repro.mapreduce.counters import C, Counters
from repro.mapreduce.engine import _sorted_by_key
from repro.mapreduce.job import SpillingMapContext
from repro.mapreduce.spill import (
    SpillRun,
    SpillStore,
    decode_spill_record,
    encode_spill_record,
    merge_runs,
    sort_run,
    spill_dir,
)


def _identity_sort_key(key):
    return key


class TestSpillRecordCodec:
    def test_round_trip_arbitrary_objects(self):
        record = (7, ("cell", 3), {"payload": [1.5, None, "x"]})
        line = encode_spill_record(*record)
        assert "\n" not in line
        assert decode_spill_record(line) == record

    def test_spill_dir_is_job_scoped(self):
        assert spill_dir("my-job") == "_spill/my-job"


class TestSortRun:
    def test_orders_by_sort_key_then_sequence(self):
        # Emission order: keys 3, 1, 3, 2 with bucket-local seqs 10..13.
        records = [(3, "a"), (1, "b"), (3, "c"), (2, "d")]
        out = sort_run(records, base=10, sort_key=_identity_sort_key)
        assert out == [(11, 1, "b"), (13, 2, "d"), (10, 3, "a"), (12, 3, "c")]

    def test_equal_keys_keep_emission_order(self):
        records = [(0, "first"), (0, "second"), (0, "third")]
        out = sort_run(records, base=0, sort_key=_identity_sort_key)
        assert [v for __, __, v in out] == ["first", "second", "third"]


class TestMergeRuns:
    """merge_runs == _sorted_by_key of the concatenated buckets, always."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("spill_every", [1, 3, 7])
    def test_reproduces_stable_sort(self, seed, spill_every):
        rng = random.Random(seed)
        store = SpillStore()
        runs = []
        combined = []  # records in (task, emission) order, the unbounded bucket
        for task in range(3):
            emitted = [
                (rng.randrange(5), f"t{task}v{i}") for i in range(rng.randrange(2, 15))
            ]
            combined.extend(emitted)
            # Cut this task's emissions into spilled runs of spill_every
            # records plus a resident remainder (possibly empty).
            base = 0
            for lo in range(0, len(emitted) - spill_every, spill_every):
                chunk = emitted[lo : lo + spill_every]
                path = f"run-{task}-{lo}"
                store.files[path] = [
                    encode_spill_record(seq, key, value)
                    for seq, key, value in sort_run(chunk, base, _identity_sort_key)
                ]
                runs.append(SpillRun(task=task, path=path, count=len(chunk)))
                base += len(chunk)
            remainder = emitted[base:]
            if remainder:
                runs.append(SpillRun(task=task, records=remainder, base=base))
        merged = merge_runs(runs, store, _identity_sort_key)
        assert merged == _sorted_by_key(combined, _identity_sort_key)

    def test_resident_only_runs_merge(self):
        runs = [
            SpillRun(task=0, records=[(2, "a"), (1, "b")], base=0),
            SpillRun(task=1, records=[(1, "c"), (2, "d")], base=0),
        ]
        merged = merge_runs(runs, SpillStore(), _identity_sort_key)
        assert merged == [(1, "b"), (1, "c"), (2, "a"), (2, "d")]


def _make_ctx(budget, num_reducers=2):
    counters = Counters()
    ctx = SpillingMapContext(
        counters,
        num_reducers,
        partitioner=lambda key, n: key % n,
        budget=budget,
        sort_key=_identity_sort_key,
    )
    return ctx, counters


class TestSpillingMapContext:
    def test_rejects_non_positive_budget(self):
        with pytest.raises(JobError, match="budget must be positive"):
            _make_ctx(0)

    def test_spills_when_budget_crossed(self):
        ctx, counters = _make_ctx(budget=64)
        for i in range(100):
            ctx.emit(i % 2, f"value-{i}")
        assert ctx.spilled
        eng = counters.engine
        assert eng(C.SPILLED_RECORDS) > 0
        assert eng(C.SPILL_FILES) > 0
        assert eng(C.SPILL_BYTES) > 0
        # Canonical counters are untouched by spilling.
        assert eng(C.MAP_OUTPUT_RECORDS) == 100
        spilled = sum(len(run) for runs in ctx.spill_runs for run in runs)
        resident = sum(len(bucket) for bucket in ctx.buckets)
        assert spilled == eng(C.SPILLED_RECORDS)
        assert spilled + resident == 100

    def test_bucket_bytes_survive_spills(self):
        """Reduce-side input-byte accounting reads bucket_bytes; spilling
        must not reset it or REDUCE_INPUT_BYTES would drift."""
        ctx, __ = _make_ctx(budget=64)
        unbounded, __ = _make_ctx(budget=10**9)
        for i in range(100):
            ctx.emit(i % 2, f"value-{i}")
            unbounded.emit(i % 2, f"value-{i}")
        assert ctx.bucket_bytes == unbounded.bucket_bytes
        assert ctx.output_bytes == unbounded.output_bytes

    def test_spill_points_are_deterministic(self):
        runs = []
        for __ in range(2):
            ctx, __counters = _make_ctx(budget=64)
            for i in range(100):
                ctx.emit(i % 2, f"value-{i}")
            runs.append((ctx.spill_runs, ctx.spill_base, ctx.buckets))
        assert runs[0] == runs[1]

    def test_unspill_restores_emission_order(self):
        ctx, counters = _make_ctx(budget=64)
        unbounded, __ = _make_ctx(budget=10**9)
        for i in range(100):
            ctx.emit(i % 2, f"value-{i}")
            unbounded.emit(i % 2, f"value-{i}")
        assert ctx.spilled
        ctx.unspill()
        assert ctx.buckets == unbounded.buckets
        assert not ctx.spilled
        # The spills happened: telemetry stays.
        assert counters.engine(C.SPILLED_RECORDS) > 0

    def test_under_budget_never_spills(self):
        ctx, counters = _make_ctx(budget=10**9)
        for i in range(100):
            ctx.emit(i % 2, f"value-{i}")
        assert not ctx.spilled
        assert counters.engine(C.SPILLED_RECORDS) == 0
