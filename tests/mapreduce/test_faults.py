"""Unit tests for the fault-injection framework and retry dispatch.

The golden end-to-end contract (algorithms × executors, byte-identical
under absorbed chaos) lives in ``test_recovery_golden.py``; this module
covers the pieces: plan construction/serialization/matching, retry
policy semantics, the attempt envelope, retry rounds, exhaustion, write
faults and the cost/counter plumbing.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    InjectedFault,
    JobError,
    MapReduceError,
    TaskRetryExhausted,
)
from repro.mapreduce.cost import CostModel, JobCostBreakdown
from repro.mapreduce.engine import Cluster
from repro.mapreduce.executor import SerialExecutor
from repro.mapreduce.faults import (
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    run_phase_with_recovery,
)
from repro.mapreduce.job import MapReduceJob


# ----------------------------------------------------------------------
# A tiny job used by the engine-level tests
# ----------------------------------------------------------------------
def _mapper(key, record, ctx):
    ctx.emit(int(record.split(",")[0]), record)


def _reducer(key, values, ctx):
    for v in sorted(values):
        ctx.emit(v)


def _stage_job(cluster: Cluster, name: str = "tiny") -> MapReduceJob:
    cluster.dfs.write_file("in/a.txt", [f"{i % 3},{i}" for i in range(60)])
    return MapReduceJob(
        name=name,
        input_paths=["in"],
        output_path="out",
        mapper=_mapper,
        reducer=_reducer,
        num_reducers=3,
    )


def _run(cluster: Cluster, name: str = "tiny"):
    return cluster.run_job(_stage_job(cluster, name))


class TestFaultSpec:
    def test_matching_rules(self):
        spec = FaultSpec("fail", "map", 2, attempt=1, job="j")
        assert spec.matches("j", "map", 2, 1)
        assert not spec.matches("j", "map", 2, 0)  # wrong attempt
        assert not spec.matches("j", "reduce", 2, 1)  # wrong phase
        assert not spec.matches("j", "map", 3, 1)  # wrong index
        assert not spec.matches("other", "map", 2, 1)  # wrong job

    def test_wildcards(self):
        spec = FaultSpec("fail", "reduce", 0, attempt=None, job=None)
        for job in ("a", "b"):
            for attempt in range(4):
                assert spec.matches(job, "reduce", 0, attempt)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(kind="explode", phase="map", index=0),
            dict(kind="fail", phase="split", index=0),
            dict(kind="fail", phase="map", index=-1),
            dict(kind="delay", phase="map", index=0, delay_s=0.0),
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(JobError):
            FaultSpec(**kwargs)


class TestFaultPlan:
    def test_builders_and_matching(self):
        plan = (
            FaultPlan()
            .fail_task("map", 0)
            .delay_task("reduce", 1, delay_s=0.2)
            .corrupt_result("reduce", 2, attempt=1)
            .fail_dfs_write(0, job="j")
        )
        assert len(plan.specs) == 4
        assert not plan.is_empty
        assert [s.kind for s in plan.matching("j", "map", 0, 0)] == ["fail"]
        assert plan.matching("j", "map", 0, 1) == []
        assert [s.kind for s in plan.matching("x", "reduce", 1, 0)] == ["delay"]
        assert [s.kind for s in plan.matching("x", "reduce", 2, 1)] == ["corrupt"]
        assert [s.phase for s in plan.matching("j", "write", 0, 0)] == ["write"]
        assert plan.matching("other", "write", 0, 0) == []

    def test_json_round_trip(self, tmp_path):
        plan = (
            FaultPlan(seed=7)
            .fail_task("map", 1)
            .corrupt_result("reduce", 0)
            .oom_task("map", 2, attempt=0, job="j")
            .hang_task("reduce", 3, hang_s=1.25)
            .poison_record(0, 17, job="j")
        )
        path = str(tmp_path / "plan.json")
        plan.dump(path)
        loaded = FaultPlan.load(path)
        assert loaded.seed == 7
        assert loaded.specs == plan.specs
        kinds = [spec.kind for spec in loaded.specs]
        assert kinds == ["fail", "corrupt", "oom", "hang", "poison-record"]
        poison = loaded.specs[-1]
        assert (poison.record, poison.attempt) == (17, None)

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(JobError, match="cannot load fault plan"):
            FaultPlan.load(str(path))
        with pytest.raises(JobError, match="unknown field 'bogus_field'"):
            FaultPlan.from_dict({"specs": [{"bogus_field": 1}]})

    def test_storage_kinds_round_trip(self, tmp_path):
        plan = (
            FaultPlan()
            .corrupt_block("in/R1", block=2, replica=1, job="j")
            .lose_replica("out/part-00000", block=0, replica=0)
        )
        path = str(tmp_path / "storage.json")
        plan.dump(path)
        loaded = FaultPlan.load(path)
        assert loaded.specs == plan.specs
        corrupt, lose = loaded.specs
        assert (corrupt.kind, corrupt.path, corrupt.block, corrupt.replica) == (
            "corrupt-block", "in/R1", 2, 1
        )
        assert (lose.kind, lose.path, lose.block, lose.replica) == (
            "lose-replica", "out/part-00000", 0, 0
        )
        assert loaded.has_storage_faults
        assert [s.kind for s in loaded.storage_specs()] == [
            "corrupt-block", "lose-replica"
        ]

    def test_storage_specs_never_match_attempts(self):
        plan = FaultPlan().corrupt_block("in/R1", job="j")
        for phase in ("map", "reduce", "write"):
            assert plan.matching("j", phase, 0, 0) == []

    @pytest.mark.parametrize(
        "kwargs, message",
        [
            (dict(kind="corrupt-block", phase="map", index=0), "path"),
            (
                dict(kind="lose-replica", phase="write", index=0, path="f"),
                "phase",
            ),
            (
                dict(
                    kind="corrupt-block", phase="map", index=0,
                    path="f", block=-1,
                ),
                "block",
            ),
            (
                dict(
                    kind="lose-replica", phase="map", index=0,
                    path="f", replica=-2,
                ),
                "replica",
            ),
            (dict(kind="fail", phase="map", index=0, path="f"), "path"),
        ],
    )
    def test_invalid_storage_specs_rejected(self, kwargs, message):
        with pytest.raises(JobError, match=message):
            FaultSpec(**kwargs)

    def test_storage_spec_json_rejects_unknown_fields(self):
        with pytest.raises(JobError, match="unknown field"):
            FaultPlan.from_dict(
                {
                    "specs": [
                        {
                            "kind": "corrupt-block",
                            "phase": "map",
                            "index": 0,
                            "path": "f",
                            "datanode": "w0",
                        }
                    ]
                }
            )

    def test_random_plans_are_seed_deterministic(self):
        a = FaultPlan.random(3, num_map_tasks=5, num_reduce_tasks=4, faults=3)
        b = FaultPlan.random(3, num_map_tasks=5, num_reduce_tasks=4, faults=3)
        c = FaultPlan.random(4, num_map_tasks=5, num_reduce_tasks=4, faults=3)
        assert a.specs == b.specs
        assert a.seed == 3
        assert a.specs != c.specs  # overwhelmingly likely given the space


class TestRetryPolicy:
    def test_backoff_doubles(self):
        policy = RetryPolicy(max_attempts=4, backoff_base_s=1.5)
        assert policy.backoff_before(0) == 0.0
        assert policy.backoff_before(1) == 1.5
        assert policy.backoff_before(2) == 3.0
        assert policy.backoff_before(3) == 6.0

    def test_active_flag(self):
        assert not RetryPolicy().active
        assert RetryPolicy(max_attempts=2).active
        assert RetryPolicy(speculate=True).active

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_attempts=0),
            dict(speculation_threshold=0.0),
            dict(speculation_threshold=1.5),
            dict(speculation_factor=1.0),
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(JobError):
            RetryPolicy(**kwargs)


class TestRecoveryDispatch:
    """run_phase_with_recovery on a plain worker, no engine involved."""

    @staticmethod
    def _square(payload, index):
        return index * index

    def test_fast_path_returns_no_report(self):
        results, report = run_phase_with_recovery(
            SerialExecutor(),
            self._square,
            4,
            None,
            job="j",
            phase="map",
            policy=RetryPolicy(),
            plan=None,
        )
        assert results == [0, 1, 4, 9]
        assert report is None

    def test_retry_rounds_absorb_failures(self):
        plan = FaultPlan().fail_task("map", 1).fail_task("map", 1, attempt=1)
        results, report = run_phase_with_recovery(
            SerialExecutor(),
            self._square,
            4,
            None,
            job="j",
            phase="map",
            policy=RetryPolicy(max_attempts=3, backoff_base_s=2.0),
            plan=plan,
        )
        assert results == [0, 1, 4, 9]
        assert report.launched == 6  # 4 + 2 retries
        assert report.failures == 2
        assert report.extra_attempts == 2
        # attempt 1 backoff 2.0 + attempt 2 backoff 4.0
        assert report.backoff_s == pytest.approx(6.0)
        outcomes = [a.outcome for a in report.attempts[1]]
        assert outcomes == ["failed", "failed", "ok"]
        assert [a.outcome for a in report.attempts[0]] == ["ok"]

    def test_exhaustion_carries_attempt_log(self):
        plan = FaultPlan().fail_task("map", 2, attempt=None)
        with pytest.raises(TaskRetryExhausted) as err:
            run_phase_with_recovery(
                SerialExecutor(),
                self._square,
                4,
                None,
                job="j",
                phase="map",
                policy=RetryPolicy(max_attempts=3),
                plan=plan,
            )
        exc = err.value
        assert "map task 2 of job 'j'" in str(exc)
        assert "failed 3 attempt(s)" in str(exc)
        assert len(exc.attempts) == 3
        assert all(a.outcome == "failed" for a in exc.attempts)
        assert "injected failure" in exc.attempts[0].error

    def test_lowest_index_raises_when_several_exhaust(self):
        plan = (
            FaultPlan()
            .fail_task("map", 3, attempt=None)
            .fail_task("map", 1, attempt=None)
        )
        with pytest.raises(TaskRetryExhausted, match="map task 1 "):
            run_phase_with_recovery(
                SerialExecutor(),
                self._square,
                4,
                None,
                job="j",
                phase="map",
                policy=RetryPolicy(max_attempts=2),
                plan=plan,
            )

    def test_corruption_is_retried(self):
        plan = FaultPlan().corrupt_result("map", 0)
        results, report = run_phase_with_recovery(
            SerialExecutor(),
            self._square,
            2,
            None,
            job="j",
            phase="map",
            policy=RetryPolicy(max_attempts=2),
            plan=plan,
        )
        assert results == [0, 1]
        assert [a.outcome for a in report.attempts[0]] == ["corrupt", "ok"]
        assert "checksum" in report.attempts[0][0].error

    def test_genuine_worker_error_is_retried_too(self):
        """Recovery treats real failures like injected ones (same path)."""
        calls = []

        def flaky(payload, index):
            calls.append(index)
            if index == 1 and calls.count(1) == 1:
                raise ValueError("transient")
            return index

        results, report = run_phase_with_recovery(
            SerialExecutor(),
            flaky,
            3,
            None,
            job="j",
            phase="map",
            policy=RetryPolicy(max_attempts=2),
            plan=None,
        )
        assert results == [0, 1, 2]
        assert report.failures == 1
        assert "transient" in report.attempts[1][0].error

    def test_empty_phase(self):
        results, report = run_phase_with_recovery(
            SerialExecutor(),
            self._square,
            0,
            None,
            job="j",
            phase="map",
            policy=RetryPolicy(max_attempts=2),
            plan=FaultPlan().fail_task("map", 0),
        )
        assert results == []
        assert report.attempts == []


class TestEngineIntegration:
    def test_injected_fault_without_retry_kills_job(self):
        cluster = Cluster(
            split_records=20, fault_plan=FaultPlan().fail_task("map", 0)
        )
        with pytest.raises(TaskRetryExhausted, match="injected failure"):
            _run(cluster)

    def test_write_fault_absorbed_and_charged(self):
        clean = Cluster(split_records=20)
        base = _run(clean)
        cluster = Cluster(
            split_records=20,
            fault_plan=FaultPlan().fail_dfs_write(1),
            retry=RetryPolicy(max_attempts=2, backoff_base_s=1.0),
        )
        result = _run(cluster)
        assert [cluster.dfs.read_file(p) for p in cluster.dfs.list_dir("out")] == [
            clean.dfs.read_file(p) for p in clean.dfs.list_dir("out")
        ]
        # The injected commit failure happened before any byte landed.
        eng = result.counters.engine
        assert eng("dfs_bytes_written") == base.counters.engine("dfs_bytes_written")
        assert eng("task_failures") == 1
        assert result.cost.fault_overhead_s == pytest.approx(
            cluster.cost_model.task_startup_s + 1.0
        )
        assert result.simulated_seconds == base.simulated_seconds

    def test_write_fault_exhaustion(self):
        cluster = Cluster(
            split_records=20,
            fault_plan=FaultPlan().fail_dfs_write(0, attempt=None),
            retry=RetryPolicy(max_attempts=2),
        )
        with pytest.raises(TaskRetryExhausted, match="part-00000"):
            _run(cluster)

    def test_job_scoped_faults_leave_other_jobs_alone(self):
        plan = FaultPlan().fail_task("map", 0, attempt=None, job="other-job")
        cluster = Cluster(split_records=20, fault_plan=plan)
        result = _run(cluster)  # job name "tiny" never matches
        assert result.output_records > 0

    def test_attempt_histories_on_task_stats(self):
        cluster = Cluster(
            split_records=20,
            fault_plan=FaultPlan().fail_task("map", 1).corrupt_result("reduce", 0),
            retry=RetryPolicy(max_attempts=2),
        )
        result = _run(cluster)
        assert [a.outcome for a in result.map_tasks[1].attempts] == ["failed", "ok"]
        assert [a.outcome for a in result.map_tasks[0].attempts] == ["ok"]
        assert [a.outcome for a in result.reduce_tasks[0].attempts] == [
            "corrupt",
            "ok",
        ]

    def test_fast_path_emits_no_recovery_counters(self):
        result = _run(Cluster(split_records=20))
        counters = result.counters.as_dict()["engine"]
        assert not any(
            k.startswith(("task_", "speculative_")) for k in counters
        )
        assert result.cost.fault_overhead_s == 0.0
        assert result.map_tasks[0].attempts == ()

    def test_active_policy_without_faults_counts_clean_attempts(self):
        cluster = Cluster(split_records=20, retry=RetryPolicy(max_attempts=3))
        result = _run(cluster)
        eng = result.counters.engine
        assert eng("task_attempts") == len(result.map_tasks) + len(
            result.reduce_tasks
        )
        assert eng("task_failures") == 0
        assert result.cost.fault_overhead_s == 0.0

    def test_delay_fault_slows_wall_not_simulation(self):
        clean = Cluster(split_records=20)
        base = _run(clean)
        cluster = Cluster(
            split_records=20,
            fault_plan=FaultPlan().delay_task("map", 0, delay_s=0.15),
            retry=RetryPolicy(max_attempts=2),
        )
        result = _run(cluster)
        assert result.simulated_seconds == base.simulated_seconds
        assert result.wall_clock_seconds >= 0.15
        assert result.counters.engine("task_failures") == 0


class TestCostPlumbing:
    def test_overhead_excluded_from_total(self):
        cost = JobCostBreakdown(
            startup_s=8.0, map_s=1.0, shuffle_s=2.0, reduce_s=3.0,
            fault_overhead_s=5.0,
        )
        assert cost.total_s == 14.0
        assert cost.total_with_faults_s == 19.0
        assert cost.as_dict()["fault_overhead_s"] == 5.0

    def test_fault_overhead_seconds(self):
        model = CostModel()
        assert model.fault_overhead_seconds(3, 7.0) == pytest.approx(
            3 * model.task_startup_s + 7.0
        )

    def test_injected_fault_is_distinguishable(self):
        assert issubclass(InjectedFault, MapReduceError)
        assert issubclass(TaskRetryExhausted, JobError)
