"""Hung-task watchdog: wall-clock timeout, reclaim, re-dispatch.

An injected ``hang`` fault wedges one attempt for seconds; the watchdog
(``RetryPolicy.task_timeout_s``) abandons it long before the hang
drains and relaunches through the ordinary retry path — the job
finishes fast, byte-identical, with the abandonment visible only as
``task_timeouts`` telemetry.

The watchdog needs a streaming session, hence parallel executors with
an explicit worker count (on a 1-CPU box the default would be a single
worker, where sessions — and so the watchdog — are unavailable).
"""

from __future__ import annotations

import time

import pytest

from repro.mapreduce.counters import C
from repro.mapreduce.dfs import InMemoryDFS
from repro.mapreduce.engine import Cluster
from repro.mapreduce.executor import ThreadExecutor
from repro.mapreduce.faults import (
    FaultPlan,
    RetryPolicy,
    run_phase_with_recovery,
)
from repro.mapreduce.job import MapReduceJob, hash_partitioner
from repro.obs.dashboard import render_job_dashboard
from repro.obs.ledger import MemorySink, RunLedger

#: Hang long, time out fast: a reclaimed run finishes in well under the
#: hang, a degraded (watchdog-less) run cannot.
HANG_S = 2.0
TIMEOUT_S = 0.25

WATCHDOG = RetryPolicy(max_attempts=2, task_timeout_s=TIMEOUT_S)


def _job() -> MapReduceJob:
    def mapper(key, line, ctx):
        for word in line.split():
            ctx.emit(word, "1")

    def reducer(word, counts, ctx):
        ctx.emit(f"{word}\t{len(counts)}")

    return MapReduceJob(
        name="wd",
        input_paths=["in"],
        output_path="out",
        mapper=mapper,
        reducer=reducer,
        num_reducers=2,
        partitioner=hash_partitioner,
    )


def _run(executor, *, plan=None, retry=None):
    cluster = Cluster(
        dfs=InMemoryDFS(),
        executor=executor,
        num_workers=4,
        fault_plan=plan,
        retry=retry or RetryPolicy(),
    )
    cluster.dfs.write_file("in", [f"w{i % 7} w{i % 3}" for i in range(40)])
    result = cluster.run_job(_job())
    output = {
        path: tuple(cluster.dfs.read_file(path))
        for path in cluster.dfs.list_dir("out")
    }
    return result, output


class TestWatchdogRecovery:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_hung_task_is_reclaimed(self, executor):
        ref, ref_output = _run(executor)
        plan = FaultPlan().hang_task("map", 0, hang_s=HANG_S)
        start = time.perf_counter()
        result, output = _run(executor, plan=plan, retry=WATCHDOG)
        wall = time.perf_counter() - start
        # Reclaimed well before the hang drains.
        assert wall < HANG_S
        eng = result.counters.engine
        assert eng(C.TASK_TIMEOUTS) == 1
        assert eng(C.TASK_FAILURES) >= 1
        # Byte-identical output and canonical time despite the reclaim.
        assert output == ref_output
        assert result.cost.total_s == ref.cost.total_s

    def test_attempt_log_records_timeout_then_ok(self):
        def worker(payload, index):
            if index == 0:
                pass  # the injected hang wedges attempt 0 for us
            return index * 10

        plan = FaultPlan().hang_task("map", 0, hang_s=HANG_S)
        results, report = run_phase_with_recovery(
            ThreadExecutor(num_workers=4),
            worker,
            4,
            None,
            job="j",
            phase="map",
            policy=WATCHDOG,
            plan=plan,
        )
        assert results == [0, 10, 20, 30]
        assert report.timeouts == 1
        outcomes = [a.outcome for a in report.attempts[0]]
        assert outcomes == ["timeout", "ok"]
        timed_out = report.attempts[0][0]
        assert "task_timeout_s" in timed_out.error


class TestWatchdogDegradation:
    """A task timeout on a session-less executor (serial, or one
    worker) cannot preempt anything — the degradation must be loud,
    not silent: counter, ledger warning, and a dashboard notice."""

    def _run_degraded(self):
        sink = MemorySink()
        cluster = Cluster(
            dfs=InMemoryDFS(),
            executor="serial",
            num_workers=4,
            retry=WATCHDOG,
            ledger=RunLedger(sink),
        )
        cluster.dfs.write_file("in", [f"w{i % 7} w{i % 3}" for i in range(40)])
        result = cluster.run_job(_job())
        return result, sink

    def test_degraded_watchdog_sets_counter_and_warns(self):
        result, sink = self._run_degraded()
        # One degradation per dispatched phase (map and reduce).
        assert result.counters.engine(C.WATCHDOG_DEGRADED) == 2
        warnings = [e for e in sink.events if e["type"] == "warning"]
        assert warnings
        assert all(w["kind"] == "watchdog_degraded" for w in warnings)
        assert "EFFECTIVE_WATCHDOG=off" in warnings[0]["detail"]
        assert {w["phase"] for w in warnings} == {"map", "reduce"}

    def test_degradation_notice_reaches_dashboard(self):
        result, _ = self._run_degraded()
        dashboard = render_job_dashboard(result)
        assert "EFFECTIVE_WATCHDOG=off" in dashboard

    def test_streaming_session_does_not_degrade(self):
        result, _ = _run("thread", retry=WATCHDOG)
        assert result.counters.engine(C.WATCHDOG_DEGRADED) == 0
