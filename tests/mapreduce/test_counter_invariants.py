"""Counter-accounting invariants across all four join algorithms (PR 3).

Regression net for the engine's bookkeeping: on every job of every
algorithm's chain,

* ``REDUCE_OUTPUT_RECORDS`` equals the job's ``output_records``;
* for jobs that ran a reduce phase, ``REDUCE_INPUT_RECORDS`` equals
  ``MAP_OUTPUT_RECORDS`` (nothing is lost or invented in the shuffle) —
  map-only jobs legitimately have map output and no reduce input;
* ``DFS_BYTES_WRITTEN`` equals the byte size of the part files the job
  wrote, both as summed per-task stats and as measured from the DFS.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import derive_grid
from repro.experiments.workloads import synthetic_chain
from repro.joins.registry import ALGORITHMS, make_algorithm
from repro.mapreduce.counters import C
from repro.mapreduce.engine import Cluster
from repro.query.predicates import Overlap
from repro.query.query import Query

N_PER_RELATION = 300
SPACE_SIDE = 4_000.0


@pytest.fixture(scope="module")
def chains():
    """Each algorithm's (cluster, job chain) on the same small workload."""
    workload = synthetic_chain(
        N_PER_RELATION, SPACE_SIDE, names=("R1", "R2", "R3"), seed=11
    )
    query = Query.chain(["R1", "R2", "R3"], Overlap())
    grid = derive_grid(workload.datasets)
    out = {}
    for name in ALGORITHMS:
        cluster = Cluster()
        algorithm = make_algorithm(name, query=query, d_max=workload.d_max)
        result = algorithm.run(query, workload.datasets, grid, cluster)
        out[name] = (cluster, result.workflow.job_results)
    return out


@pytest.mark.parametrize("algorithm_name", ALGORITHMS)
def test_reduce_output_matches_output_records(chains, algorithm_name):
    __, job_results = chains[algorithm_name]
    for result in job_results:
        assert (
            result.counters.engine(C.REDUCE_OUTPUT_RECORDS)
            == result.output_records
        ), result.job_name


@pytest.mark.parametrize("algorithm_name", ALGORITHMS)
def test_shuffle_conserves_records(chains, algorithm_name):
    __, job_results = chains[algorithm_name]
    saw_reduce_job = False
    for result in job_results:
        if result.reduce_task_wall:  # ran a real reduce phase
            saw_reduce_job = True
            assert result.counters.engine(
                C.REDUCE_INPUT_RECORDS
            ) == result.counters.engine(C.MAP_OUTPUT_RECORDS), result.job_name
        else:  # map-only: shuffle never ran, nothing reached a reducer
            assert result.counters.engine(C.REDUCE_INPUT_RECORDS) == 0
    assert saw_reduce_job


@pytest.mark.parametrize("algorithm_name", ALGORITHMS)
def test_dfs_bytes_written_matches_part_files(chains, algorithm_name):
    cluster, job_results = chains[algorithm_name]
    for result in job_results:
        written = result.counters.engine(C.DFS_BYTES_WRITTEN)
        # Summed per-task output bytes (recorded at part-file write)...
        assert written == sum(
            t.output_bytes for t in result.reduce_tasks
        ), result.job_name
        # ... and the files as they sit on the DFS afterwards.
        assert written == cluster.dfs.dir_size(result.output_path), result.job_name


@pytest.mark.parametrize("algorithm_name", ALGORITHMS)
def test_chains_are_nonempty(chains, algorithm_name):
    """Guard the guards: every chain ran jobs that produced output."""
    __, job_results = chains[algorithm_name]
    assert job_results
    assert any(r.output_records for r in job_results)
