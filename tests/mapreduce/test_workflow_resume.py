"""Workflow checkpoint/resume: crash mid-chain, restart, skip done work.

The scenario the tentpole demands: a Controlled-Replicate round is two
jobs (mark, then join).  A permanent fault kills job 2; a resumed run
on the same DFS must restore job 1 from its checkpoint manifest —
counters, cost and simulated seconds included — re-execute only job 2,
and end byte-identical to a run that never crashed.
"""

from __future__ import annotations

import pytest

from repro.data.synthetic import SyntheticSpec, generate_relations
from repro.errors import JobError, TaskRetryExhausted
from repro.grid.partitioning import GridPartitioning
from repro.joins.controlled import ControlledReplicateJoin
from repro.mapreduce.dfs import InMemoryDFS
from repro.mapreduce.engine import Cluster
from repro.mapreduce.faults import FaultPlan
from repro.mapreduce.localfs import LocalFSDFS
from repro.mapreduce.workflow import MANIFEST_FILE, Workflow
from repro.query.predicates import Overlap
from repro.query.query import Query

SPEC = SyntheticSpec(
    n=120, x_range=(0, 400), y_range=(0, 400), l_range=(0, 60), b_range=(0, 60),
    seed=55,
)
DATASETS = generate_relations(SPEC, ["R1", "R2", "R3"])
QUERY = Query.chain(["R1", "R2", "R3"], Overlap())
GRID = GridPartitioning.square(SPEC.space, 16)

#: Permanently kill reduce task 0 of the chain's second job.
KILL_JOB_2 = FaultPlan().fail_task(
    "reduce", 0, attempt=None, job="controlled-replicate-join"
)

CHECKPOINTS = "checkpoints"
MANIFEST_PATH = f"{CHECKPOINTS}/{MANIFEST_FILE}"


def _run(cluster: Cluster):
    return ControlledReplicateJoin().run(QUERY, DATASETS, GRID, cluster)


def _strip_telemetry(counters_dict):
    return {
        group: {
            k: v
            for k, v in names.items()
            if not k.startswith(("task_", "speculative_"))
        }
        for group, names in counters_dict.items()
    }


@pytest.fixture(scope="module")
def clean():
    """The unfaulted reference run (checkpointing on, nothing to resume)."""
    cluster = Cluster(checkpoint_dir=CHECKPOINTS)
    result = _run(cluster)
    return cluster, result


class TestCheckpointing:
    def test_manifest_written_per_job(self, clean):
        cluster, result = clean
        lines = cluster.dfs.read_file(MANIFEST_PATH)
        assert len(lines) == 2
        import json

        names = [json.loads(line)["name"] for line in lines]
        assert names == ["controlled-replicate-mark", "controlled-replicate-join"]
        assert all(not r.resumed for r in result.workflow.job_results)

    def test_no_checkpoint_dir_no_manifest(self):
        cluster = Cluster()
        _run(cluster)
        assert not cluster.dfs.exists(MANIFEST_PATH)

    def test_checkpointing_does_not_pollute_job_counters(self, clean):
        """Manifest I/O happens outside the job counter windows: the
        checkpointed run's counters equal a checkpoint-free run's."""
        __, result = clean
        bare = _run(Cluster())
        assert (
            result.workflow.counters.as_dict()
            == bare.workflow.counters.as_dict()
        )
        assert result.tuples == bare.tuples


class TestCrashAndResume:
    def test_resume_skips_finished_job_and_matches_clean_run(self, clean):
        __, ref = clean
        crashed = Cluster(checkpoint_dir=CHECKPOINTS, fault_plan=KILL_JOB_2)
        with pytest.raises(TaskRetryExhausted):
            _run(crashed)
        # Job 1 completed and was checkpointed before the crash.
        assert len(crashed.dfs.read_file(MANIFEST_PATH)) == 1

        resumed = Cluster(
            dfs=crashed.dfs, checkpoint_dir=CHECKPOINTS, resume=True
        )
        result = _run(resumed)
        flags = [r.resumed for r in result.workflow.job_results]
        assert flags == [True, False]
        # The restored job did no work: zero wall clock, but its
        # original simulated seconds and counters came back verbatim.
        restored = result.workflow.job_results[0]
        assert restored.wall_clock_seconds == 0.0
        assert restored.simulated_seconds == ref.workflow.job_results[0].simulated_seconds
        assert result.tuples == ref.tuples
        assert (
            result.workflow.simulated_seconds == ref.workflow.simulated_seconds
        )
        # Counters match the clean run modulo the recovery telemetry the
        # crashed run's job 1 execution legitimately checkpointed.
        assert _strip_telemetry(result.workflow.counters.as_dict()) == (
            _strip_telemetry(ref.workflow.counters.as_dict())
        )

    def test_second_resume_restores_everything(self, clean):
        __, ref = clean
        crashed = Cluster(checkpoint_dir=CHECKPOINTS, fault_plan=KILL_JOB_2)
        with pytest.raises(TaskRetryExhausted):
            _run(crashed)
        first = Cluster(dfs=crashed.dfs, checkpoint_dir=CHECKPOINTS, resume=True)
        _run(first)
        second = Cluster(dfs=crashed.dfs, checkpoint_dir=CHECKPOINTS, resume=True)
        result = _run(second)
        assert [r.resumed for r in result.workflow.job_results] == [True, True]
        assert result.tuples == ref.tuples
        assert result.workflow.simulated_seconds == ref.workflow.simulated_seconds

    def test_tampered_output_fails_fingerprint_and_reruns(self, clean):
        __, ref = clean
        crashed = Cluster(checkpoint_dir=CHECKPOINTS, fault_plan=KILL_JOB_2)
        with pytest.raises(TaskRetryExhausted):
            _run(crashed)
        # Truncate one part file of the checkpointed mark output: the
        # manifest fingerprint no longer matches, so the job re-runs.
        marked = crashed.dfs.list_dir("controlled-replicate/marked")
        victim = marked[0]
        crashed.dfs.delete(victim)
        crashed.dfs.write_file(victim, ["tampered"])
        resumed = Cluster(
            dfs=crashed.dfs, checkpoint_dir=CHECKPOINTS, resume=True
        )
        result = _run(resumed)
        assert [r.resumed for r in result.workflow.job_results] == [False, False]
        assert result.tuples == ref.tuples

    def test_corrupt_manifest_is_a_loud_error(self):
        cluster = Cluster(checkpoint_dir=CHECKPOINTS)
        _run(cluster)
        lines = cluster.dfs.read_file(MANIFEST_PATH)
        cluster.dfs.delete(MANIFEST_PATH)
        cluster.dfs.write_file(MANIFEST_PATH, lines[:1] + ["{not json"])
        resumed = Cluster(dfs=cluster.dfs, checkpoint_dir=CHECKPOINTS, resume=True)
        with pytest.raises(JobError, match="manifest"):
            _run(resumed)

    def test_resume_with_no_manifest_runs_everything(self, clean):
        __, ref = clean
        # A DFS with prior state but no manifest (e.g. the previous run
        # never had checkpointing on): resume degrades to a full run.
        dfs = InMemoryDFS()
        dfs.write_file("leftovers/from-an-earlier-run", ["not a manifest"])
        cluster = Cluster(dfs=dfs, checkpoint_dir=CHECKPOINTS, resume=True)
        result = _run(cluster)
        assert [r.resumed for r in result.workflow.job_results] == [False, False]
        assert result.tuples == ref.tuples

    def test_resume_on_fresh_in_memory_dfs_is_a_loud_error(self):
        """Same mistake as CLI `--resume` without `--dfs-root`: a fresh
        in-memory DFS starts empty, so there is nothing to resume."""
        with pytest.raises(JobError, match="durable DFS state"):
            Cluster(resume=True)


class TestCrossProcessResume:
    """LocalFSDFS makes checkpoints durable: a *new* DFS instance (as a
    fresh process would build) resumes from what a crashed one left."""

    def test_resume_from_disk(self, tmp_path, clean):
        __, ref = clean
        root = str(tmp_path / "dfsroot")
        crashed = Cluster(
            dfs=LocalFSDFS(root),
            checkpoint_dir=CHECKPOINTS,
            fault_plan=KILL_JOB_2,
        )
        with pytest.raises(TaskRetryExhausted):
            _run(crashed)

        # "New process": nothing shared but the directory tree.
        resumed = Cluster(
            dfs=LocalFSDFS(root), checkpoint_dir=CHECKPOINTS, resume=True
        )
        result = _run(resumed)
        assert [r.resumed for r in result.workflow.job_results] == [True, False]
        assert result.tuples == ref.tuples
        assert result.workflow.simulated_seconds == ref.workflow.simulated_seconds


class TestWorkflowResumeApi:
    def test_resume_requires_checkpoint_dir(self):
        workflow = Workflow(Cluster())
        with pytest.raises(JobError, match="checkpoint_dir"):
            workflow.resume([])
