"""Hadoop-style skipping mode: quarantine the bad record, finish the job.

A ``poison-record`` fault kills every attempt that reads one split
offset — without skipping the task exhausts its retries; with
``max_skipped_records > 0`` the retry loop quarantines the offending
record to a DFS side file and the job completes with exactly that
record missing from the canonical input counters.
"""

from __future__ import annotations

import pytest

from repro.errors import TaskRetryExhausted
from repro.mapreduce.counters import C
from repro.mapreduce.dfs import InMemoryDFS
from repro.mapreduce.engine import Cluster
from repro.mapreduce.faults import FaultPlan, RetryPolicy
from repro.mapreduce.job import MapReduceJob, hash_partitioner

LINES = [f"key{i} value{i}" for i in range(24)]


def _job() -> MapReduceJob:
    def mapper(key, line, ctx):
        word, value = line.split()
        ctx.emit(word, value)

    def reducer(word, values, ctx):
        ctx.emit(f"{word}\t{','.join(values)}")

    return MapReduceJob(
        name="skipjob",
        input_paths=["in"],
        output_path="out",
        mapper=mapper,
        reducer=reducer,
        num_reducers=2,
        partitioner=hash_partitioner,
    )


def _run(plan, retry):
    cluster = Cluster(dfs=InMemoryDFS(), fault_plan=plan, retry=retry)
    cluster.dfs.write_file("in", LINES)
    result = cluster.run_job(_job())
    return cluster, result


class TestSkippingMode:
    def test_poison_record_is_quarantined_and_job_completes(self):
        plan = FaultPlan().poison_record(0, 7)
        cluster, result = _run(
            plan, RetryPolicy(max_attempts=4, max_skipped_records=2)
        )
        eng = result.counters.engine
        assert eng(C.SKIPPED_RECORDS) == 1
        # Exactly the poisoned record is missing from the input count.
        assert eng(C.MAP_INPUT_RECORDS) == len(LINES) - 1
        output = "\n".join(
            line
            for path in sorted(cluster.dfs.list_dir("out"))
            for line in cluster.dfs.read_file(path)
        )
        assert "key7" not in output
        assert "key8" in output

    def test_quarantine_side_file_names_source_and_text(self):
        plan = FaultPlan().poison_record(0, 7)
        cluster, __ = _run(
            plan, RetryPolicy(max_attempts=4, max_skipped_records=2)
        )
        lines = cluster.dfs.read_side_file("_quarantine/skipjob/map-00000")
        assert len(lines) == 1
        source, __tab, text = lines[0].partition("\t")
        # Engine linenos are 0-based (the mapper-key convention), so
        # split offset 7 of a single-file input is "in:7".
        assert source == "in:7"
        assert "key7 value7" in text

    def test_quarantine_survives_job_success(self):
        """The quarantine file is the post-mortem artifact: unlike the
        spill directory it is *not* deleted when the job commits."""
        plan = FaultPlan().poison_record(0, 7)
        cluster, __ = _run(
            plan, RetryPolicy(max_attempts=4, max_skipped_records=2)
        )
        assert cluster.dfs.read_side_file("_quarantine/skipjob/map-00000")
        assert not cluster.dfs.list_dir("_spill/skipjob")

    def test_skip_bound_exhausts_retries(self):
        """Two poison records but max_skipped_records=1: the second bad
        record cannot be quarantined, so the task dies for good."""
        plan = FaultPlan().poison_record(0, 3).poison_record(0, 7)
        with pytest.raises(TaskRetryExhausted):
            _run(plan, RetryPolicy(max_attempts=6, max_skipped_records=1))

    def test_skipping_off_means_retry_exhaustion(self):
        plan = FaultPlan().poison_record(0, 7)
        with pytest.raises(TaskRetryExhausted):
            _run(plan, RetryPolicy(max_attempts=3))

    def test_skips_do_not_charge_failures(self):
        """A skip retry is not a failure: absorbed-chaos telemetry stays
        interpretable (failures count real deaths only)."""
        plan = FaultPlan().poison_record(0, 7)
        __, result = _run(
            plan, RetryPolicy(max_attempts=4, max_skipped_records=2)
        )
        eng = result.counters.engine
        assert eng(C.TASK_FAILURES) == 0
        assert eng(C.SKIPPED_RECORDS) == 1
