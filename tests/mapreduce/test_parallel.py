"""The determinism matrix: every executor at every worker count must
produce byte-identical DFS output and identical engine counters.

This is the engine's core parallelism guarantee (splits formed in file
order, per-task counter shards merged in task-id order, part files
written in reducer-id order), asserted both on a classic word-count job
with a combiner and on a real multi-way spatial join.
"""

import pytest

from repro.mapreduce.counters import C
from repro.mapreduce.dfs import InMemoryDFS
from repro.mapreduce.engine import Cluster
from repro.mapreduce.job import MapReduceJob, hash_partitioner

MATRIX = [
    (executor, workers)
    for executor in ("serial", "thread", "process")
    for workers in (1, 2, 8)
]


def word_count_job(combine: bool = True) -> MapReduceJob:
    def mapper(key, line, ctx):
        for word in line.split():
            ctx.emit(word, 1)

    def reducer(word, counts, ctx):
        ctx.emit(f"{word}\t{sum(counts)}")

    def combiner(word, counts):
        return [sum(counts)]

    return MapReduceJob(
        name="wc",
        input_paths=["in"],
        output_path="out",
        mapper=mapper,
        reducer=reducer,
        num_reducers=4,
        partitioner=hash_partitioner,
        combiner=combiner if combine else None,
    )


def run_word_count(executor: str, workers: int):
    """Run word count over several files/splits; snapshot output + counters."""
    cluster = Cluster(dfs=InMemoryDFS(), executor=executor, num_workers=workers)
    cluster.split_records = 7
    lines = [f"w{i % 13} w{i % 5} common w{i}" for i in range(60)]
    cluster.dfs.write_file("in/part-a", lines[:25])
    cluster.dfs.write_file("in/part-b", lines[25:40])
    cluster.dfs.write_file("in/part-c", lines[40:])
    result = cluster.run_job(word_count_job())
    parts = {
        path: cluster.dfs.read_file(path) for path in cluster.dfs.list_dir("out")
    }
    return parts, result.counters.as_dict(), result.output_records


class TestWordCountMatrix:
    baseline = None

    @classmethod
    def setup_class(cls):
        cls.baseline = run_word_count("serial", 1)

    @pytest.mark.parametrize("executor,workers", MATRIX)
    def test_identical_output_and_counters(self, executor, workers):
        parts, counters, output_records = run_word_count(executor, workers)
        base_parts, base_counters, base_output = self.baseline
        assert parts == base_parts  # byte-identical per part file
        assert counters == base_counters
        assert output_records == base_output

    def test_baseline_nontrivial(self):
        parts, counters, __ = self.baseline
        assert len(parts) == 4
        assert counters[C.GROUP_ENGINE][C.MAP_INPUT_RECORDS] == 60
        assert counters[C.GROUP_ENGINE][C.COMBINE_INPUT_RECORDS] > 0


class TestJoinMatrix:
    """A real C-Rep join (two chained jobs, marking + local join + user
    counters) survives the same matrix."""

    baseline = None

    @classmethod
    def setup_class(cls):
        cls.baseline = cls.run_join("serial", 1)

    @staticmethod
    def run_join(executor: str, workers: int):
        from repro.experiments.common import derive_grid
        from repro.experiments.workloads import synthetic_chain
        from repro.joins.registry import make_algorithm
        from repro.query.predicates import Overlap
        from repro.query.query import Query

        query = Query.chain(["R1", "R2", "R3"], Overlap())
        workload = synthetic_chain(300, 1700.0, names=("R1", "R2", "R3"), seed=7)
        grid = derive_grid(workload.datasets, 16)
        cluster = Cluster(executor=executor, num_workers=workers)
        cluster.split_records = 100
        algorithm = make_algorithm("c-rep", query=query, d_max=workload.d_max)
        result = algorithm.run(query, workload.datasets, grid, cluster)
        parts = {
            path: cluster.dfs.read_file(path)
            for path in cluster.dfs.list_dir(result.workflow.final_output_path)
        }
        return (
            sorted(result.tuples),
            parts,
            result.workflow.counters.as_dict(),
            result.stats.shuffled_records,
            result.stats.rectangles_marked,
        )

    @pytest.mark.parametrize("executor,workers", MATRIX)
    def test_identical_join_results(self, executor, workers):
        assert self.run_join(executor, workers) == self.baseline

    def test_baseline_nontrivial(self):
        tuples, parts, counters, shuffled, marked = self.baseline
        assert tuples and parts and shuffled > 0 and marked > 0
