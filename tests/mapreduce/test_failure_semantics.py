"""Executor failure semantics: identical errors on every back-end (PR 3).

A failing task must surface as the *same* :class:`JobError` — lowest
failing task id, same message — whether tasks run serially, on a thread
pool or on forked worker processes.  Serial execution aborts at the
first failing task; the parallel back-ends collect results in task-id
order, so the lowest failing id raises there too.
"""

from __future__ import annotations

import pytest

from repro.errors import JobError
from repro.mapreduce.dfs import InMemoryDFS
from repro.mapreduce.engine import Cluster
from repro.mapreduce.job import MapReduceJob

EXECUTORS = [("serial", 1), ("thread", 2), ("process", 2)]


def _cluster(executor, workers):
    cluster = Cluster(dfs=InMemoryDFS(), executor=executor, num_workers=workers)
    cluster.split_records = 1  # one map task per input line
    return cluster


def _map_failing_job():
    def mapper(key, line, ctx):
        if line == "boom":
            raise ValueError(f"bad record {line!r}")
        ctx.emit(0, line)

    return MapReduceJob(
        name="map-fails",
        input_paths=["in"],
        output_path="out",
        mapper=mapper,
        reducer=lambda k, vs, ctx: ctx.emit(str(k)),
        num_reducers=2,
    )


def _reduce_failing_job():
    def reducer(key, values, ctx):
        if key in (1, 3):
            raise RuntimeError(f"reducer choked on {key}")
        ctx.emit(str(key))

    return MapReduceJob(
        name="reduce-fails",
        input_paths=["in"],
        output_path="out",
        mapper=lambda key, line, ctx: ctx.emit(int(line), line),
        reducer=reducer,
        num_reducers=4,
        partitioner=lambda key, n: key % n,
    )


def _error_of(executor, workers, job, lines):
    cluster = _cluster(executor, workers)
    cluster.dfs.write_file("in", lines)
    with pytest.raises(JobError) as excinfo:
        cluster.run_job(job)
    return str(excinfo.value)


class TestMapFailures:
    # Lines 1 and 3 fail -> map tasks 1 and 3 fail; task 1 must win.
    LINES = ["ok", "boom", "ok", "boom"]

    @pytest.fixture(scope="class")
    def serial_message(self):
        return _error_of("serial", 1, _map_failing_job(), self.LINES)

    def test_message_names_lowest_failing_record(self, serial_message):
        assert "map task failed" in serial_message
        assert "in:1" in serial_message
        assert "bad record 'boom'" in serial_message

    @pytest.mark.parametrize(("executor", "workers"), EXECUTORS)
    def test_same_error_on_every_backend(self, serial_message, executor, workers):
        assert (
            _error_of(executor, workers, _map_failing_job(), self.LINES)
            == serial_message
        )


class TestReduceFailures:
    # Keys 0..3 land on reducers 0..3; reducers 1 and 3 raise; 1 must win.
    LINES = ["0", "1", "2", "3"]

    @pytest.fixture(scope="class")
    def serial_message(self):
        return _error_of("serial", 1, _reduce_failing_job(), self.LINES)

    def test_message_names_lowest_failing_reducer(self, serial_message):
        assert "reduce task 1 failed" in serial_message
        assert "reducer choked on 1" in serial_message

    @pytest.mark.parametrize(("executor", "workers"), EXECUTORS)
    def test_same_error_on_every_backend(self, serial_message, executor, workers):
        assert (
            _error_of(executor, workers, _reduce_failing_job(), self.LINES)
            == serial_message
        )
