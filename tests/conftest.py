"""Shared fixtures: small grids, workloads and helper factories."""

from __future__ import annotations

import pytest

from repro.geometry.rectangle import Rect
from repro.grid.partitioning import GridPartitioning
from repro.query.predicates import Overlap, Range
from repro.query.query import Query


@pytest.fixture
def unit_space() -> Rect:
    """A 100 x 100 space with corners on integers."""
    return Rect.from_corners(0.0, 0.0, 100.0, 100.0)


@pytest.fixture
def grid4(unit_space: Rect) -> GridPartitioning:
    """A 2x2 grid over the unit space (cells of 50 x 50)."""
    return GridPartitioning(unit_space, rows=2, cols=2)


@pytest.fixture
def grid16(unit_space: Rect) -> GridPartitioning:
    """A 4x4 grid over the unit space (the paper's Figure 2 layout)."""
    return GridPartitioning(unit_space, rows=4, cols=4)


@pytest.fixture
def chain3_query() -> Query:
    """Q2 = R1 Ov R2 and R2 Ov R3."""
    return Query.chain(["R1", "R2", "R3"], Overlap())


@pytest.fixture
def range3_query() -> Query:
    """Q3 = R1 Ra(10) R2 and R2 Ra(10) R3."""
    return Query.chain(["R1", "R2", "R3"], Range(10.0))


def make_rect(x: float, y: float, l: float, b: float) -> Rect:
    """Terse rectangle constructor for test tables."""
    return Rect(x=x, y=y, l=l, b=b)
