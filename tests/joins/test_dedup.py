"""Unit tests for the duplicate-avoidance owner rules."""

import pytest

from repro.errors import JoinError
from repro.geometry.rectangle import Rect
from repro.joins.dedup import (
    tuple_owner,
    two_way_overlap_owner,
    two_way_range_owner,
)


class TestTwoWayOverlapOwner:
    def test_paper_example(self, grid16):
        # §5.2 / Figure 2(a): the overlap area of r3 and r4 starts in
        # cell 14 (1-based) even though both also meet cell 15.
        # Reconstruction: overlap start-point in cell (3, 1) = id 13.
        r3 = Rect(30, 20, 40, 15)  # x [30,70], y [5,20]
        r4 = Rect(40, 15, 40, 10)  # x [40,80], y [5,15]
        owner = two_way_overlap_owner(r3, r4, grid16)
        inter = r3.intersection(r4)
        assert inter is not None and inter.start_point == (40, 15)
        assert owner == grid16.cell_of_point(40, 15).cell_id

    def test_disjoint_none(self, grid16):
        assert two_way_overlap_owner(
            Rect(0, 99, 1, 1), Rect(90, 10, 1, 1), grid16
        ) is None

    def test_owner_receives_both_under_split(self, grid16):
        # The owner cell must be among the split cells of both inputs.
        a = Rect(20, 80, 30, 30)
        b = Rect(40, 70, 30, 30)
        owner = two_way_overlap_owner(a, b, grid16)
        cells_a = {c.cell_id for c in grid16.cells_overlapping(a)}
        cells_b = {c.cell_id for c in grid16.cells_overlapping(b)}
        assert owner in cells_a & cells_b


class TestTwoWayRangeOwner:
    def test_within_range(self, grid16):
        r1 = Rect(10, 90, 5, 5)
        r2 = Rect(20, 90, 5, 5)  # dx = 5
        owner = two_way_range_owner(r1, r2, 6.0, grid16)
        assert owner is not None

    def test_beyond_enlarged_none(self, grid16):
        r1 = Rect(10, 90, 5, 5)
        r2 = Rect(40, 90, 5, 5)  # dx = 25
        assert two_way_range_owner(r1, r2, 6.0, grid16) is None

    def test_superset_of_exact_range(self, grid16):
        # Corner case: enlarged rectangles overlap but Euclidean
        # distance exceeds d (the r2' counter-example of §5.3) — the
        # owner exists, the exact check is the reducer's job.
        r1 = Rect(10, 90, 2, 2)
        r2 = Rect(16, 84, 2, 2)  # dx=4, dy=4 -> eucl 5.66 > 5
        assert not r1.within_distance(r2, 5.0)
        assert two_way_range_owner(r1, r2, 5.0, grid16) is not None

    def test_owner_in_routing_cells(self, grid16):
        r1 = Rect(18, 60, 6, 6)
        r2 = Rect(30, 55, 6, 6)
        d = 10.0
        owner = two_way_range_owner(r1, r2, d, grid16)
        routed_r1 = {c.cell_id for c in grid16.cells_overlapping(r1.enlarge(d))}
        routed_r2 = {c.cell_id for c in grid16.cells_overlapping(r2)}
        assert owner in routed_r1 & routed_r2

    def test_zero_d_matches_overlap(self, grid16):
        a = Rect(20, 80, 30, 30)
        b = Rect(40, 70, 30, 30)
        assert two_way_range_owner(a, b, 0.0, grid16) == two_way_overlap_owner(
            a, b, grid16
        )

    def test_negative_d_rejected(self, grid16):
        with pytest.raises(JoinError):
            two_way_range_owner(Rect(0, 9, 1, 1), Rect(5, 9, 1, 1), -1, grid16)


class TestTupleOwner:
    def test_max_x_min_y_rule(self, grid16):
        # §6.2: owner holds (largest start x, smallest start y).
        rects = [Rect(10, 90, 5, 5), Rect(60, 80, 5, 5), Rect(30, 20, 5, 5)]
        owner = tuple_owner(rects, grid16)
        assert owner == grid16.cell_of_point(60, 20).cell_id

    def test_single_rect(self, grid16):
        r = Rect(33, 62, 4, 4)
        assert tuple_owner([r], grid16) == grid16.cell_of(r).cell_id

    def test_empty_rejected(self, grid16):
        with pytest.raises(JoinError):
            tuple_owner([], grid16)

    def test_owner_in_every_members_fourth_quadrant(self, grid16):
        # Reachability under f1 replication.
        rects = [Rect(5, 95, 40, 40), Rect(48, 52, 30, 30), Rect(70, 90, 5, 80)]
        owner_cell = grid16.cell_by_id(tuple_owner(rects, grid16))
        for r in rects:
            assert owner_cell.is_fourth_quadrant_of(grid16.cell_of(r))
