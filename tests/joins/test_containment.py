"""Tests for containment queries — the paper's future-work extension.

``Contains`` is an asymmetric distance-0 predicate: it routes and marks
like overlap but must be evaluated with the right orientation, which
exercises the oriented-evaluation path of every algorithm.
"""

import pytest

from repro.data.synthetic import SyntheticSpec, generate_rects
from repro.errors import QueryError
from repro.geometry.rectangle import Rect
from repro.grid.partitioning import GridPartitioning
from repro.joins.reference import brute_force_join
from repro.joins.registry import make_algorithm
from repro.query.predicates import Contains, Overlap
from repro.query.query import Query, Triple

GRID = GridPartitioning(Rect.from_corners(0, 0, 600, 600), 4, 4)


class TestPredicate:
    def test_asymmetric(self):
        outer = Rect(0, 10, 10, 10)
        inner = Rect(2, 8, 2, 2)
        assert Contains().holds(outer, inner)
        assert not Contains().holds(inner, outer)
        assert not Contains().symmetric

    def test_distance_zero(self):
        assert Contains().distance == 0.0
        assert Contains().is_overlap

    def test_str(self):
        assert str(Contains()) == "Ct"

    def test_triple_orientation(self):
        t = Triple(Contains(), "outer", "inner")
        outer = Rect(0, 10, 10, 10)
        inner = Rect(2, 8, 2, 2)
        assert t.holds_with("outer", outer, inner)
        assert t.holds_with("inner", inner, outer)
        assert not t.holds_with("outer", inner, outer)
        with pytest.raises(QueryError):
            t.holds_with("nope", outer, inner)

    def test_as_range_query_rejected(self):
        q = Query([Triple(Contains(), "A", "B")])
        with pytest.raises(QueryError):
            q.as_range_query()


@pytest.fixture(scope="module")
def datasets():
    # Big "regions" containing small "sites", plus a mid-size layer.
    big = SyntheticSpec(
        n=100, x_range=(0, 600), y_range=(0, 600),
        l_range=(60, 150), b_range=(60, 150), seed=61,
    )
    mid = SyntheticSpec(
        n=150, x_range=(0, 600), y_range=(0, 600),
        l_range=(10, 40), b_range=(10, 40), seed=62,
    )
    small = SyntheticSpec(
        n=250, x_range=(0, 600), y_range=(0, 600),
        l_range=(0, 8), b_range=(0, 8), seed=63,
    )
    return {
        "regions": generate_rects(big),
        "zones": generate_rects(mid),
        "sites": generate_rects(small),
    }


class TestContainmentJoins:
    def test_two_way_contains(self, datasets):
        query = Query([Triple(Contains(), "regions", "sites")])
        expected = brute_force_join(query, datasets)
        assert expected  # non-trivial
        for name in ("cascade", "all-rep", "c-rep"):
            result = make_algorithm(name).run(query, datasets, GRID)
            assert result.tuples == expected, name

    def test_orientation_matters_end_to_end(self, datasets):
        forward = Query([Triple(Contains(), "regions", "sites")])
        backward = Query([Triple(Contains(), "sites", "regions")])
        f = brute_force_join(forward, datasets)
        b = brute_force_join(backward, datasets)
        assert f and not b  # sites never contain regions

    def test_three_way_containment_chain(self, datasets):
        # regions contain zones, zones contain sites.
        query = Query([
            Triple(Contains(), "regions", "zones"),
            Triple(Contains(), "zones", "sites"),
        ])
        expected = brute_force_join(query, datasets)
        for name in ("cascade", "all-rep", "c-rep"):
            result = make_algorithm(name).run(query, datasets, GRID)
            assert result.tuples == expected, name
        d_max = max(
            r.diagonal for rects in datasets.values() for __, r in rects
        )
        result = make_algorithm("c-rep-l", query=query, d_max=d_max).run(
            query, datasets, GRID
        )
        assert result.tuples == expected

    def test_mixed_contains_and_overlap(self, datasets):
        query = Query([
            Triple(Contains(), "regions", "sites"),
            Triple(Overlap(), "regions", "zones"),
        ])
        expected = brute_force_join(query, datasets)
        for name in ("cascade", "all-rep", "c-rep"):
            result = make_algorithm(name).run(query, datasets, GRID)
            assert result.tuples == expected, name
