"""Golden equivalence under memory pressure (bounded-memory tentpole).

The acceptance contract: a ``memory_budget`` small enough to force
map-side spills in every algorithm changes *nothing canonical* — part
files byte-identical to the unbounded run, identical counters modulo
the new ``spill*`` telemetry, identical canonical simulated seconds —
on all three executors.  The external merge must therefore reproduce
the unbounded path's stable sort exactly, duplicate keys included.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import derive_grid
from repro.experiments.workloads import synthetic_chain
from repro.joins.registry import ALGORITHMS, make_algorithm
from repro.mapreduce.engine import Cluster
from repro.query.predicates import Overlap
from repro.query.query import Query

N_PER_RELATION = 500
SPACE_SIDE = 5_300.0
SEED = 11

#: Small enough that every algorithm's shuffle-heavy jobs spill several
#: runs per map task; large enough the suite stays fast.
BUDGET = 2_048

OUTPUT_DIRS = {
    "cascade": "two-way-cascade/output",
    "all-rep": "all-replicate/output",
    "c-rep": "controlled-replicate/output",
    "c-rep-l": "controlled-replicate-limit/output",
}

EXECUTORS = [("serial", 1), ("thread", 2), ("process", 2)]


@pytest.fixture(scope="module")
def workload():
    return synthetic_chain(
        N_PER_RELATION, SPACE_SIDE, names=("R1", "R2", "R3"), seed=SEED
    )


def _strip_telemetry(counters_dict):
    """Counters minus the telemetry a budgeted run is allowed (required,
    even) to add."""
    return {
        group: {
            name: value
            for name, value in names.items()
            if not name.startswith(("task_", "speculative_", "spill", "skipped_"))
        }
        for group, names in counters_dict.items()
    }


def _run(workload, algorithm_name, *, budget=None, executor="serial", workers=1):
    query = Query.chain(["R1", "R2", "R3"], Overlap())
    grid = derive_grid(workload.datasets)
    cluster = Cluster(
        executor=executor, num_workers=workers, memory_budget=budget
    )
    algorithm = make_algorithm(algorithm_name, query=query, d_max=workload.d_max)
    result = algorithm.run(query, workload.datasets, grid, cluster)
    snapshot = {
        path: tuple(cluster.dfs.read_file(path))
        for path in cluster.dfs.resolve(OUTPUT_DIRS[algorithm_name])
    }
    return snapshot, result


@pytest.fixture(scope="module")
def golden(workload):
    """One unbounded serial run per algorithm."""
    return {name: _run(workload, name) for name in ALGORITHMS}


@pytest.mark.parametrize("algorithm_name", ALGORITHMS)
@pytest.mark.parametrize(("executor", "workers"), EXECUTORS)
def test_spilling_changes_nothing(
    workload, golden, algorithm_name, executor, workers
):
    ref_snapshot, ref = golden[algorithm_name]
    snapshot, result = _run(
        workload,
        algorithm_name,
        budget=BUDGET,
        executor=executor,
        workers=workers,
    )
    # The pressure was real: the budget forced spills.
    eng = result.workflow.counters.engine
    assert eng("spilled_records") > 0
    assert eng("spill_files") > 0
    # Part files: same names, byte-identical content.
    assert snapshot == ref_snapshot
    assert result.tuples == ref.tuples
    # Canonical simulated seconds unchanged: spill I/O is charged to the
    # non-canonical spill_overhead_s bucket only.
    assert result.stats.simulated_seconds == ref.stats.simulated_seconds
    assert _strip_telemetry(result.workflow.counters.as_dict()) == _strip_telemetry(
        ref.workflow.counters.as_dict()
    )
    overhead = sum(r.cost.spill_overhead_s for r in result.workflow.job_results)
    assert overhead > 0.0


@pytest.mark.parametrize("algorithm_name", ALGORITHMS)
def test_golden_run_is_unspilled(golden, algorithm_name):
    """Guard the guard: the unbounded reference must produce output and
    carry no spill telemetry at all (fast path untouched)."""
    snapshot, ref = golden[algorithm_name]
    assert ref.tuples
    assert any(lines for lines in snapshot.values())
    eng_counters = ref.workflow.counters.as_dict()["engine"]
    assert not any(k.startswith("spill") for k in eng_counters)
