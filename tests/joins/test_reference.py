"""Unit tests for the brute-force oracle itself (hand-computed cases)."""

import pytest

from repro.errors import JoinError
from repro.geometry.rectangle import Rect
from repro.joins.reference import brute_force_join
from repro.query.predicates import Overlap, Range
from repro.query.query import Query, Triple


class TestBruteForce:
    def test_two_way_overlap(self):
        q = Query.chain(["A", "B"], Overlap())
        datasets = {
            "A": [(0, Rect(0, 10, 5, 5)), (1, Rect(50, 50, 2, 2))],
            "B": [(0, Rect(4, 9, 5, 5)), (1, Rect(51, 49, 2, 2))],
        }
        assert brute_force_join(q, datasets) == {(0, 0), (1, 1)}

    def test_two_way_range(self):
        q = Query.chain(["A", "B"], Range(5.0))
        datasets = {
            "A": [(0, Rect(0, 10, 2, 2))],
            "B": [(0, Rect(6, 10, 2, 2)), (1, Rect(9, 10, 2, 2))],
        }
        # dx to rid 0 is 4 <= 5; to rid 1 is 7 > 5.
        assert brute_force_join(q, datasets) == {(0, 0)}

    def test_chain_semantics(self):
        q = Query.chain(["A", "B", "C"], Overlap())
        datasets = {
            "A": [(0, Rect(0, 10, 3, 3))],
            "B": [(0, Rect(2, 9, 10, 3))],
            "C": [(0, Rect(11, 8, 3, 3))],
        }
        assert brute_force_join(q, datasets) == {(0, 0, 0)}

    def test_cycle_stricter_than_chain(self):
        chain = Query.chain(["A", "B", "C"], Overlap())
        cycle = Query([
            Triple(Overlap(), "A", "B"),
            Triple(Overlap(), "B", "C"),
            Triple(Overlap(), "A", "C"),
        ])
        datasets = {
            "A": [(0, Rect(0, 10, 3, 3))],
            "B": [(0, Rect(2, 9, 10, 3))],
            "C": [(0, Rect(11, 8, 3, 3))],  # overlaps B only
        }
        assert brute_force_join(chain, datasets) == {(0, 0, 0)}
        assert brute_force_join(cycle, datasets) == set()

    def test_self_join_distinctness(self):
        q = Query.self_chain("R", 2, Overlap())
        datasets = {"R": [(0, Rect(0, 10, 5, 5)), (1, Rect(2, 9, 5, 5))]}
        assert brute_force_join(q, datasets) == {(0, 1), (1, 0)}

    def test_missing_dataset_rejected(self):
        q = Query.chain(["A", "B"], Overlap())
        with pytest.raises(JoinError):
            brute_force_join(q, {"A": []})

    def test_empty_dataset_empty_result(self):
        q = Query.chain(["A", "B"], Overlap())
        assert brute_force_join(q, {"A": [], "B": [(0, Rect(0, 1, 1, 1))]}) == set()
