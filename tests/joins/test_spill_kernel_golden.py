"""Golden equivalence of spilling crossed with the kernel/shuffle plane.

PR 7 makes record batches the unit of data movement (columnar shuffle,
batched codecs); PR 6 added the numpy kernel; the bounded-memory PR
added spill-to-disk.  Each axis is individually golden-tested — this
suite pins the *interaction*: Controlled-Replicate under a memory
budget small enough to force spills must stay byte-identical to the
unbounded scalar reference for every combination of
``kernel`` x ``columnar_shuffle``, and all budgeted legs must agree on
the spill telemetry itself (spill points depend only on estimated
record bytes, which the columnar and numpy paths must not perturb).
"""

from __future__ import annotations

import pytest

from repro.experiments.common import derive_grid
from repro.experiments.workloads import synthetic_chain
from repro.joins.registry import make_algorithm
from repro.kernels import numpy_or_none
from repro.mapreduce.engine import Cluster
from repro.query.predicates import Overlap
from repro.query.query import Query

pytestmark = pytest.mark.skipif(
    numpy_or_none() is None, reason="numpy not available"
)

N_PER_RELATION = 500
SPACE_SIDE = 5_300.0
SEED = 11
#: forces several spill runs per map task at this workload size
BUDGET = 2_048
OUTPUT_DIR = "controlled-replicate/output"

#: (kernel, columnar_shuffle) legs that must reproduce the reference
LEGS = [
    ("python", True),
    ("python", False),
    ("numpy", True),
    ("numpy", False),
]


@pytest.fixture(scope="module")
def workload():
    return synthetic_chain(
        N_PER_RELATION, SPACE_SIDE, names=("R1", "R2", "R3"), seed=SEED
    )


def _run(workload, *, kernel, columnar, budget):
    query = Query.chain(["R1", "R2", "R3"], Overlap())
    grid = derive_grid(workload.datasets)
    cluster = Cluster(
        kernel=kernel, columnar_shuffle=columnar, memory_budget=budget
    )
    algorithm = make_algorithm("c-rep", query=query, d_max=workload.d_max)
    result = algorithm.run(query, workload.datasets, grid, cluster)
    snapshot = {
        path: tuple(cluster.dfs.read_file(path))
        for path in cluster.dfs.resolve(OUTPUT_DIR)
    }
    return snapshot, result


def _spill_counters(result):
    eng = result.workflow.counters.as_dict()["engine"]
    return {k: v for k, v in eng.items() if k.startswith("spill")}


@pytest.fixture(scope="module")
def golden(workload):
    """The unbounded scalar reference: python kernel, columnar shuffle
    (the engine default), no memory budget."""
    return _run(workload, kernel="python", columnar=True, budget=None)


@pytest.fixture(scope="module")
def budgeted(workload):
    return {
        (kernel, columnar): _run(
            workload, kernel=kernel, columnar=columnar, budget=BUDGET
        )
        for kernel, columnar in LEGS
    }


@pytest.mark.parametrize(("kernel", "columnar"), LEGS)
def test_spilled_leg_matches_unspilled_reference(
    golden, budgeted, kernel, columnar
):
    ref_snapshot, ref = golden
    snapshot, result = budgeted[(kernel, columnar)]
    spills = _spill_counters(result)
    assert spills.get("spilled_records", 0) > 0
    assert spills.get("spill_files", 0) > 0
    assert spills.get("spill_bytes", 0) > 0
    assert snapshot == ref_snapshot
    assert result.tuples == ref.tuples
    assert result.stats.simulated_seconds == ref.stats.simulated_seconds
    assert result.stats.shuffled_records == ref.stats.shuffled_records
    assert result.stats.output_tuples == ref.stats.output_tuples


def test_spill_telemetry_is_plane_independent(budgeted):
    """Every budgeted leg spills at exactly the same points: the spill
    counters are a function of record bytes, not of which kernel or
    shuffle representation produced them."""
    reference = _spill_counters(budgeted[LEGS[0]][1])
    assert reference  # non-empty: the budget really forced spills
    for leg in LEGS[1:]:
        assert _spill_counters(budgeted[leg][1]) == reference


def test_reference_never_spills(golden):
    _, ref = golden
    assert ref.tuples
    assert not _spill_counters(ref)
