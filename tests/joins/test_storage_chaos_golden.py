"""Golden equivalence under storage chaos (durable-storage tentpole).

The acceptance contract: with ``Cluster(replication=2)`` and any single
worker killed — or any single replica corrupted/lost — mid-job, all
four Table-2 algorithms on all three executors produce byte-identical
part files and canonical counters / simulated seconds versus a clean
*unreplicated* run.  Recovery traffic appears only in the non-canonical
``network_overhead_s`` bucket, and the storage telemetry reconciles
exactly with the run's ledger events.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import derive_grid
from repro.experiments.workloads import synthetic_chain
from repro.joins.registry import ALGORITHMS, make_algorithm
from repro.mapreduce.engine import Cluster
from repro.mapreduce.faults import FaultPlan, RetryPolicy
from repro.obs.ledger import LedgerRun, MemorySink, RunLedger
from repro.query.predicates import Overlap
from repro.query.query import Query

N_PER_RELATION = 500
SPACE_SIDE = 5_300.0
SEED = 11

OUTPUT_DIRS = {
    "cascade": "two-way-cascade/output",
    "all-rep": "all-replicate/output",
    "c-rep": "controlled-replicate/output",
    "c-rep-l": "controlled-replicate-limit/output",
}

EXECUTORS = [("serial", 4), ("thread", 4), ("process", 4)]

#: A worker killed mid-map in every job of every chain: its in-flight
#: attempts are lost AND every block replica it held dies with it,
#: forcing read failover during the job and re-replication at the
#: end-of-job barrier.
WORKER_CHAOS = FaultPlan().fail_worker("w1", phase="map", index=1, job=None)

RETRY = RetryPolicy(max_attempts=3)

#: Everything the storage/recovery planes add on top of a clean run —
#: golden comparisons strip these; the canonical remainder must be
#: byte-identical.
_TELEMETRY_PREFIXES = (
    "task_",
    "speculative_",
    "worker",
    "map_output_lost",
    "tasks_reexecuted",
    "watchdog_",
    "block_",
    "blocks_",
    "replicas_",
    "locality_",
)


@pytest.fixture(scope="module")
def workload():
    return synthetic_chain(
        N_PER_RELATION, SPACE_SIDE, names=("R1", "R2", "R3"), seed=SEED
    )


def _strip_telemetry(counters_dict):
    return {
        group: {
            name: value
            for name, value in names.items()
            if not name.startswith(_TELEMETRY_PREFIXES)
        }
        for group, names in counters_dict.items()
    }


def _run(workload, algorithm_name, *, plan=None, retry=None,
         executor="serial", workers=4, replication=None, ledger=None):
    query = Query.chain(["R1", "R2", "R3"], Overlap())
    grid = derive_grid(workload.datasets)
    kwargs = {}
    if retry is not None:
        kwargs["retry"] = retry
    if ledger is not None:
        kwargs["ledger"] = ledger
    cluster = Cluster(
        executor=executor,
        num_workers=workers,
        fault_plan=plan,
        replication=replication,
        **kwargs,
    )
    algorithm = make_algorithm(algorithm_name, query=query, d_max=workload.d_max)
    result = algorithm.run(query, workload.datasets, grid, cluster)
    snapshot = {
        path: tuple(cluster.dfs.read_file(path))
        for path in cluster.dfs.resolve(OUTPUT_DIRS[algorithm_name])
    }
    return snapshot, result, cluster


@pytest.fixture(scope="module")
def golden(workload):
    """One clean *unreplicated* serial run per algorithm — the yardstick
    every replicated/chaotic run must match byte-for-byte."""
    return {
        name: _run(workload, name, executor="serial", workers=4)[:2]
        for name in ALGORITHMS
    }


@pytest.mark.parametrize("algorithm_name", ALGORITHMS)
@pytest.mark.parametrize(("executor", "workers"), EXECUTORS)
def test_worker_death_under_replication_changes_nothing(
    workload, golden, algorithm_name, executor, workers
):
    ref_snapshot, ref = golden[algorithm_name]
    snapshot, result, cluster = _run(
        workload,
        algorithm_name,
        plan=WORKER_CHAOS,
        retry=RETRY,
        executor=executor,
        workers=workers,
        replication=2,
    )
    # Part files byte-identical to the clean unreplicated run.
    assert snapshot == ref_snapshot
    assert result.tuples == ref.tuples
    # Canonical simulated seconds unmoved: replica healing is charged
    # to network_overhead_s, never to the modelled makespan.
    assert result.stats.simulated_seconds == ref.stats.simulated_seconds
    assert _strip_telemetry(result.workflow.counters.as_dict()) == _strip_telemetry(
        ref.workflow.counters.as_dict()
    )
    # ... and the chaos really engaged the plane: the dead worker's
    # replicas were lost and healed back to the target factor.
    eng = result.workflow.counters.engine
    assert eng("worker_failures") >= 1
    assert eng("replicas_lost") > 0
    assert eng("blocks_rereplicated") > 0
    assert eng("blocks_under_replicated") == 0
    net = sum(r.cost.network_overhead_s for r in result.workflow.job_results)
    assert net > 0.0
    # The healed store audits clean.
    assert cluster._block_plane.fsck().exit_code == 0


@pytest.mark.parametrize(
    "chaos_builder",
    [
        lambda: FaultPlan().corrupt_block("input/R1", block=0, replica=0),
        lambda: FaultPlan().lose_replica("input/R2", block=0, replica=1),
    ],
    ids=["corrupt-block", "lose-replica"],
)
def test_replica_damage_is_invisible_to_results(
    workload, golden, chaos_builder
):
    """A corrupted or vanished replica mid-run: transparent failover,
    telemetry-only damage, self-healed store."""
    ref_snapshot, ref = golden["c-rep"]
    snapshot, result, cluster = _run(
        workload,
        "c-rep",
        plan=chaos_builder(),
        executor="serial",
        workers=4,
        replication=2,
    )
    assert snapshot == ref_snapshot
    assert result.stats.simulated_seconds == ref.stats.simulated_seconds
    assert _strip_telemetry(result.workflow.counters.as_dict()) == _strip_telemetry(
        ref.workflow.counters.as_dict()
    )
    eng = result.workflow.counters.engine
    assert eng("block_corruptions") + eng("replicas_lost") >= 1
    assert cluster._block_plane.fsck().exit_code == 0


def test_replication_off_is_byte_for_byte_disengaged(workload, golden):
    """With replication unset, a run never emits a single storage or
    locality counter — the plane does not exist."""
    __, result, cluster = _run(workload, "cascade", executor="serial")
    eng = result.workflow.counters.as_dict()["engine"]
    assert not any(
        k.startswith(("block_", "blocks_", "replicas_", "locality_"))
        for k in eng
    )
    assert cluster._block_plane is None
    assert cluster.dfs.block_plane is None
    assert all(
        r.cost.network_overhead_s == 0.0 for r in result.workflow.job_results
    )


def test_storage_telemetry_is_executor_independent(workload):
    """The full storage counter set — not just output — is identical on
    serial, thread and process back-ends (deterministic placement)."""
    per_executor = []
    for executor, workers in EXECUTORS:
        __, result, __cl = _run(
            workload, "c-rep", plan=WORKER_CHAOS, retry=RETRY,
            executor=executor, workers=workers, replication=2,
        )
        eng = result.workflow.counters.as_dict()["engine"]
        per_executor.append(
            {k: v for k, v in eng.items() if k.startswith(_TELEMETRY_PREFIXES)}
        )
    assert per_executor[0] == per_executor[1] == per_executor[2]
    assert per_executor[0]  # non-empty: the chaos engaged


def test_counters_reconcile_with_ledger(workload):
    """``LOCALITY_*``, ``BLOCK*`` and ``REPLICAS_LOST`` reconcile
    exactly with the typed events the run journaled."""
    sink = MemorySink()
    __, result, __cl = _run(
        workload, "c-rep", plan=WORKER_CHAOS, retry=RETRY,
        executor="serial", workers=4, replication=2,
        ledger=RunLedger(sink),
    )
    eng = result.workflow.counters.engine
    run = LedgerRun.from_events(sink.events)
    assert sum(j.locality_hits for j in run.jobs) == eng("locality_hits")
    assert sum(j.locality_misses for j in run.jobs) == eng("locality_misses")
    assert sum(j.replicas_lost for j in run.jobs) == eng("replicas_lost")
    assert sum(j.blocks_rereplicated for j in run.jobs) == eng(
        "blocks_rereplicated"
    )
    assert sum(j.block_corruptions for j in run.jobs) == eng(
        "block_corruptions"
    )
    assert eng("locality_hits") + eng("locality_misses") > 0
    assert eng("replicas_lost") > 0
