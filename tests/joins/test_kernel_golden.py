"""Golden equivalence of the columnar kernel path (PR 6 tentpole).

The numpy kernel replaces per-record probes and predicate loops with
batched array operations; the engine contract is that nothing outside
the cluster can tell which kernel ran: byte-identical final DFS output,
identical canonical counters and identical simulated seconds, for every
algorithm and every executor back-end.

The reference for each algorithm is one forced ``kernel="python"``
serial run on a seeded Table-2-shaped workload; the numpy kernel is
then checked on the serial, thread and process executors against that
single golden snapshot — a 4 algorithms x 3 executors x 2 kernels
matrix.  When numpy is unavailable the numpy leg degrades to the scalar
fallback, which makes every assertion trivially true, so the suite
skips instead of pretending to cover it.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import derive_grid
from repro.experiments.workloads import synthetic_chain
from repro.joins.registry import ALGORITHMS, make_algorithm
from repro.kernels import numpy_or_none
from repro.mapreduce.engine import Cluster
from repro.query.predicates import Overlap
from repro.query.query import Query

pytestmark = pytest.mark.skipif(
    numpy_or_none() is None, reason="numpy not available"
)

#: Reduced Table-2 shape: same generator/space/seed family as the
#: benchmarks, small enough to run 4 algorithms x 4 configurations.
N_PER_RELATION = 700
SPACE_SIDE = 6_300.0
SEED = 11

#: Output directory of each algorithm, by registry name.
OUTPUT_DIRS = {
    "cascade": "two-way-cascade/output",
    "all-rep": "all-replicate/output",
    "c-rep": "controlled-replicate/output",
    "c-rep-l": "controlled-replicate-limit/output",
}

EXECUTORS = [("serial", 1), ("thread", 2), ("process", 2)]


@pytest.fixture(scope="module")
def workload():
    return synthetic_chain(
        N_PER_RELATION, SPACE_SIDE, names=("R1", "R2", "R3"), seed=SEED
    )


def _run(workload, algorithm_name, *, kernel, executor="serial", workers=1):
    """One full join run on a fresh cluster; returns (snapshot, stats, tuples)."""
    query = Query.chain(["R1", "R2", "R3"], Overlap())
    grid = derive_grid(workload.datasets)
    cluster = Cluster(executor=executor, num_workers=workers, kernel=kernel)
    algorithm = make_algorithm(
        algorithm_name, query=query, d_max=workload.d_max
    )
    result = algorithm.run(query, workload.datasets, grid, cluster)
    snapshot = {
        path: tuple(cluster.dfs.read_file(path))
        for path in cluster.dfs.resolve(OUTPUT_DIRS[algorithm_name])
    }
    return snapshot, result.stats, result.tuples


def _counters(stats):
    """Every JoinStats field that must be executor/kernel independent
    (wall_clock_seconds is real time and legitimately varies)."""
    return {
        "simulated_seconds": stats.simulated_seconds,
        "shuffled_records": stats.shuffled_records,
        "rectangles_marked": stats.rectangles_marked,
        "rectangles_after_replication": stats.rectangles_after_replication,
        "output_tuples": stats.output_tuples,
        "job_seconds": stats.job_seconds,
    }


@pytest.fixture(scope="module")
def golden(workload):
    """Scalar-kernel serial run per algorithm: the reference the numpy
    kernel must reproduce exactly."""
    return {
        name: _run(workload, name, kernel="python") for name in ALGORITHMS
    }


@pytest.mark.parametrize("algorithm_name", ALGORITHMS)
@pytest.mark.parametrize(("executor", "workers"), EXECUTORS)
def test_numpy_kernel_matches_python_kernel(
    workload, golden, algorithm_name, executor, workers
):
    ref_snapshot, ref_stats, ref_tuples = golden[algorithm_name]
    snapshot, stats, tuples = _run(
        workload,
        algorithm_name,
        kernel="numpy",
        executor=executor,
        workers=workers,
    )
    assert tuples == ref_tuples
    # Part files: same names, byte-identical content.
    assert snapshot == ref_snapshot
    assert _counters(stats) == _counters(ref_stats)


@pytest.mark.parametrize("algorithm_name", ALGORITHMS)
def test_python_kernel_stable_across_executors(workload, golden, algorithm_name):
    """The scalar kernel itself must stay executor independent — this
    pins the other half of the matrix to the same golden snapshot."""
    ref_snapshot, ref_stats, ref_tuples = golden[algorithm_name]
    for executor, workers in EXECUTORS[1:]:
        snapshot, stats, tuples = _run(
            workload,
            algorithm_name,
            kernel="python",
            executor=executor,
            workers=workers,
        )
        assert tuples == ref_tuples
        assert snapshot == ref_snapshot
        assert _counters(stats) == _counters(ref_stats)


@pytest.mark.parametrize("algorithm_name", ALGORITHMS)
def test_golden_output_is_nonempty(golden, algorithm_name):
    """Guard the guard: an empty snapshot would make the equivalence
    assertions vacuously true."""
    snapshot, __, tuples = golden[algorithm_name]
    assert tuples
    assert any(lines for lines in snapshot.values())
