"""Unit tests for the C-Rep-L replication limits."""

import math

import pytest

from repro.errors import JoinError
from repro.joins.limits import ReplicationLimits
from repro.query.predicates import Overlap, Range
from repro.query.query import Query


class TestConstruction:
    def test_unlimited(self):
        limits = ReplicationLimits.unlimited()
        assert limits.is_unlimited
        assert math.isinf(limits.bound_for("anything"))

    def test_invalid_metric(self):
        with pytest.raises(JoinError):
            ReplicationLimits(by_dataset={}, metric="manhattan")

    def test_negative_bound(self):
        with pytest.raises(JoinError):
            ReplicationLimits(by_dataset={"R": -1.0})


class TestFromQuery:
    def test_overlap_chain(self):
        # §7.9: 4-chain, ends 2*d_max, middles d_max.
        q = Query.chain(["R1", "R2", "R3", "R4"], Overlap())
        limits = ReplicationLimits.from_query(q, 10.0)
        assert limits.bound_for("R1") == 20.0
        assert limits.bound_for("R2") == 10.0
        assert not limits.is_unlimited

    def test_range_chain(self):
        # §8: ends (m-2)*d_max + (m-1)*d.
        q = Query.chain(["R1", "R2", "R3", "R4"], Range(5.0))
        limits = ReplicationLimits.from_query(q, 10.0)
        assert limits.bound_for("R1") == 35.0
        assert limits.bound_for("R2") == 20.0

    def test_self_join_takes_max_over_slots(self):
        # All slots read the same dataset: the dataset's bound is the
        # largest (end-slot) bound.
        q = Query.self_chain("roads", 4, Overlap())
        limits = ReplicationLimits.from_query(q, 10.0)
        assert limits.bound_for("roads") == 20.0

    def test_per_dataset_dmax(self):
        q = Query.chain(["A", "B", "C"], Overlap())
        limits = ReplicationLimits.from_query(q, {"A": 1.0, "B": 7.0, "C": 2.0})
        # A to C crosses B: bound 7 (B's diagonal).
        assert limits.bound_for("A") == 7.0
        assert limits.bound_for("B") == 0.0

    def test_default_metric_is_safe(self):
        q = Query.chain(["A", "B"], Overlap())
        assert ReplicationLimits.from_query(q, 1.0).metric == "chebyshev"

    def test_unknown_dataset_unbounded(self):
        q = Query.chain(["A", "B"], Overlap())
        limits = ReplicationLimits.from_query(q, 1.0)
        assert math.isinf(limits.bound_for("not-in-query"))
