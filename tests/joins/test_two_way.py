"""Integration tests for the Section 5 two-way joins."""

import pytest

from repro.data.synthetic import SyntheticSpec, generate_rects
from repro.geometry.rectangle import Rect
from repro.grid.partitioning import GridPartitioning
from repro.joins.reference import brute_force_join
from repro.joins.two_way import two_way_overlap, two_way_range
from repro.query.predicates import Overlap, Range
from repro.query.query import Query


@pytest.fixture(scope="module")
def workload():
    spec = SyntheticSpec(
        n=150, x_range=(0, 400), y_range=(0, 400),
        l_range=(0, 50), b_range=(0, 50), seed=21,
    )
    r1 = generate_rects(spec)
    r2 = generate_rects(spec.with_seed(22))
    return r1, r2


@pytest.fixture(scope="module")
def grid():
    return GridPartitioning(Rect.from_corners(0, 0, 400, 400), 4, 4)


class TestOverlapJoin:
    def test_matches_oracle(self, workload, grid):
        r1, r2 = workload
        result = two_way_overlap(r1, r2, grid)
        expected = brute_force_join(
            Query.chain(["R1", "R2"], Overlap()), {"R1": r1, "R2": r2}
        )
        assert result.tuples == expected
        assert expected  # non-trivial workload

    def test_no_duplicates_in_raw_output(self, workload, grid):
        r1, r2 = workload
        result = two_way_overlap(r1, r2, grid)
        lines = []
        for path in result.workflow.job_results[-1].counters.as_dict():
            pass  # counters carry no lines; read the DFS below instead
        # Dedup rule: the reported tuple count equals the set size.
        assert result.stats.output_tuples == len(result.tuples)

    def test_boundary_straddling_pair(self, grid):
        # A pair overlapping exactly on a grid line is found once.
        r1 = [(0, Rect(80, 220, 40, 40))]  # spans cells horizontally
        r2 = [(0, Rect(100, 210, 40, 40))]
        result = two_way_overlap(r1, r2, grid)
        assert result.tuples == {(0, 0)}
        assert result.stats.output_tuples == 1

    def test_self_join(self, grid):
        rects = [
            (0, Rect(10, 390, 30, 30)),
            (1, Rect(25, 380, 30, 30)),
            (2, Rect(300, 100, 5, 5)),
        ]
        result = two_way_overlap(rects, rects, grid, self_join=True)
        assert result.tuples == {(0, 1), (1, 0)}


class TestRangeJoin:
    @pytest.mark.parametrize("d", [1.0, 15.0, 60.0])
    def test_matches_oracle(self, workload, grid, d):
        r1, r2 = workload
        result = two_way_range(r1, r2, d, grid)
        expected = brute_force_join(
            Query.chain(["R1", "R2"], Range(d)), {"R1": r1, "R2": r2}
        )
        assert result.tuples == expected

    def test_corner_pair_beyond_euclidean_excluded(self, grid):
        # Enlarged rectangles overlap, Euclidean distance > d (§5.3's
        # r2' counter-example): the reducer's exact check must drop it.
        r1 = [(0, Rect(100, 300, 10, 10))]
        r2 = [(0, Rect(114, 286, 10, 10))]  # dx=4, dy=4 -> 5.66
        result = two_way_range(r1, r2, 5.0, grid)
        assert result.tuples == set()

    def test_distance_exactly_d_included(self, grid):
        r1 = [(0, Rect(100, 300, 10, 10))]
        r2 = [(0, Rect(115, 300, 10, 10))]  # dx = 5
        result = two_way_range(r1, r2, 5.0, grid)
        assert result.tuples == {(0, 0)}

    def test_zero_distance_equals_overlap(self, workload, grid):
        r1, r2 = workload
        assert (
            two_way_range(r1, r2, 0.0, grid).tuples
            == two_way_overlap(r1, r2, grid).tuples
        )

    def test_range_self_join(self, grid):
        rects = [(0, Rect(10, 390, 5, 5)), (1, Rect(25, 390, 5, 5))]
        result = two_way_range(rects, rects, 12.0, grid, self_join=True)
        assert result.tuples == {(0, 1), (1, 0)}
