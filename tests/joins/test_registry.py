"""Unit tests for the algorithm registry."""

import pytest

from repro.errors import JoinError
from repro.joins.all_replicate import AllReplicateJoin
from repro.joins.cascade import CascadeJoin
from repro.joins.controlled import ControlledReplicateJoin
from repro.joins.registry import ALGORITHMS, make_algorithm
from repro.query.predicates import Overlap
from repro.query.query import Query


class TestRegistry:
    def test_names(self):
        assert set(ALGORITHMS) == {"cascade", "all-rep", "c-rep", "c-rep-l"}

    def test_simple_factories(self):
        assert isinstance(make_algorithm("cascade"), CascadeJoin)
        assert isinstance(make_algorithm("all-rep"), AllReplicateJoin)
        crep = make_algorithm("c-rep")
        assert isinstance(crep, ControlledReplicateJoin)
        assert crep.limits.is_unlimited

    def test_crepl_needs_query_and_dmax(self):
        with pytest.raises(JoinError):
            make_algorithm("c-rep-l")
        q = Query.chain(["A", "B"], Overlap())
        crepl = make_algorithm("c-rep-l", query=q, d_max=3.0)
        assert isinstance(crepl, ControlledReplicateJoin)
        assert not crepl.limits.is_unlimited
        assert crepl.name == "controlled-replicate-limit"

    def test_limit_metric_passthrough(self):
        q = Query.chain(["A", "B"], Overlap())
        crepl = make_algorithm("c-rep-l", query=q, d_max=3.0, limit_metric="euclidean")
        assert crepl.limits.metric == "euclidean"

    def test_index_kind_passthrough(self):
        assert make_algorithm("cascade", index_kind="rtree").index_kind == "rtree"

    def test_unknown(self):
        with pytest.raises(JoinError):
            make_algorithm("quantum-join")
