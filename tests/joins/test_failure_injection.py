"""Failure injection: corrupted inputs and hostile configurations must
surface as clean, typed errors — never silent data loss."""

import pytest

from repro.data.synthetic import SyntheticSpec, generate_relations
from repro.errors import DFSError, JobError, JoinError, ReproError
from repro.geometry.rectangle import Rect
from repro.grid.partitioning import GridPartitioning
from repro.joins.all_replicate import AllReplicateJoin
from repro.joins.base import stage_datasets
from repro.joins.cascade import CascadeJoin
from repro.joins.controlled import ControlledReplicateJoin
from repro.mapreduce.engine import Cluster
from repro.query.predicates import Overlap
from repro.query.query import Query

GRID = GridPartitioning(Rect.from_corners(0, 0, 100, 100), 2, 2)
QUERY = Query.chain(["R1", "R2"], Overlap())

GOOD = {
    "R1": [(0, Rect(10, 90, 20, 20))],
    "R2": [(0, Rect(15, 85, 20, 20))],
}


def corrupt_input(cluster: Cluster, line: str) -> None:
    """Append a malformed record to R1's staged file."""
    lines = cluster.dfs.read_file("input/R1")
    cluster.dfs.write_file("input/R1", lines + [line])


@pytest.mark.parametrize(
    "algorithm",
    [CascadeJoin(), AllReplicateJoin(), ControlledReplicateJoin()],
    ids=["cascade", "all-rep", "c-rep"],
)
@pytest.mark.parametrize(
    "bad_line",
    ["not,a,rect", "1,2,3", "9,1.0,2.0,NaN,4.0", ""],
    ids=["garbage", "short", "nan-coord", "empty"],
)
def test_malformed_record_fails_loudly(monkeypatch, algorithm, bad_line):
    # The algorithms (re-)stage their inputs on run(), so the corruption
    # is injected right after staging via the staging hook each module
    # imported.
    import repro.joins.all_replicate as ar
    import repro.joins.cascade as cc
    import repro.joins.controlled as ct

    def stage_and_corrupt(cluster, datasets):
        paths = stage_datasets(cluster, datasets)
        corrupt_input(cluster, bad_line)
        return paths

    for mod in (ar, cc, ct):
        monkeypatch.setattr(mod, "stage_datasets", stage_and_corrupt)

    with pytest.raises(JobError) as err:
        algorithm.run(QUERY, GOOD, GRID, Cluster())
    # The task failure names the failing record location.
    assert "map task failed" in str(err.value)
    assert "input/R1" in str(err.value)


class TestConfigurationErrors:
    def test_missing_dataset(self):
        with pytest.raises(JoinError):
            CascadeJoin().run(QUERY, {"R1": GOOD["R1"]}, GRID)

    def test_dataset_name_with_path_separator(self):
        with pytest.raises(JoinError):
            stage_datasets(Cluster(), {"a/b": []})

    def test_all_errors_share_base(self):
        for exc in (DFSError, JobError, JoinError):
            assert issubclass(exc, ReproError)


class TestDegenerateWorkloads:
    @pytest.mark.parametrize(
        "algorithm",
        [CascadeJoin(), AllReplicateJoin(), ControlledReplicateJoin()],
        ids=["cascade", "all-rep", "c-rep"],
    )
    def test_empty_relations(self, algorithm):
        datasets = {"R1": [], "R2": []}
        result = algorithm.run(QUERY, datasets, GRID)
        assert result.tuples == set()

    @pytest.mark.parametrize(
        "algorithm",
        [CascadeJoin(), AllReplicateJoin(), ControlledReplicateJoin()],
        ids=["cascade", "all-rep", "c-rep"],
    )
    def test_one_empty_side(self, algorithm):
        datasets = {"R1": GOOD["R1"], "R2": []}
        result = algorithm.run(QUERY, datasets, GRID)
        assert result.tuples == set()

    def test_single_cell_grid(self):
        grid = GridPartitioning(Rect.from_corners(0, 0, 100, 100), 1, 1)
        spec = SyntheticSpec(
            n=60, x_range=(0, 100), y_range=(0, 100),
            l_range=(0, 30), b_range=(0, 30), seed=3,
        )
        datasets = generate_relations(spec, ["R1", "R2"])
        from repro.joins.reference import brute_force_join

        expected = brute_force_join(QUERY, datasets)
        for algorithm in (CascadeJoin(), AllReplicateJoin(), ControlledReplicateJoin()):
            assert algorithm.run(QUERY, datasets, grid, Cluster()).tuples == expected

    def test_rectangles_on_space_border(self):
        datasets = {
            "R1": [(0, Rect(0, 100, 100, 100))],  # the whole space
            "R2": [(0, Rect(100, 0, 0, 0))],  # bottom-right corner point
        }
        for algorithm in (CascadeJoin(), AllReplicateJoin(), ControlledReplicateJoin()):
            result = algorithm.run(QUERY, datasets, GRID)
            assert result.tuples == {(0, 0)}
