"""End-to-end integration tests: all four MR algorithms vs the oracle on
shared fixed workloads, plus algorithm-specific metrics behaviour."""

import pytest

from repro.data.synthetic import SyntheticSpec, generate_relations
from repro.data.california import CaliforniaSpec, generate_california
from repro.geometry.rectangle import Rect
from repro.grid.partitioning import GridPartitioning
from repro.joins.all_replicate import AllReplicateJoin
from repro.joins.base import JoinStats
from repro.joins.cascade import CascadeJoin
from repro.joins.controlled import ControlledReplicateJoin
from repro.joins.limits import ReplicationLimits
from repro.joins.reference import brute_force_join
from repro.joins.registry import make_algorithm
from repro.mapreduce.engine import Cluster
from repro.query.predicates import Overlap, Range
from repro.query.query import Query, Triple

SPEC = SyntheticSpec(
    n=220, x_range=(0, 800), y_range=(0, 800),
    l_range=(0, 70), b_range=(0, 70), seed=42,
)
GRID = GridPartitioning(Rect.from_corners(0, 0, 800, 800), 4, 4)


@pytest.fixture(scope="module")
def datasets():
    return generate_relations(SPEC, ["R1", "R2", "R3"])


QUERIES = {
    "overlap-chain": Query.chain(["R1", "R2", "R3"], Overlap()),
    "range-chain": Query.chain(["R1", "R2", "R3"], Range(40.0)),
    "hybrid-chain": Query.chain(["R1", "R2", "R3"], [Overlap(), Range(60.0)]),
    "overlap-star": Query.star("R2", ["R1", "R3"], Overlap()),
    "triangle": Query([
        Triple(Overlap(), "R1", "R2"),
        Triple(Overlap(), "R2", "R3"),
        Triple(Range(50.0), "R1", "R3"),
    ]),
}


def algorithms_for(query):
    d_max = SPEC.max_diagonal
    return {
        "cascade": CascadeJoin(),
        "all-rep": AllReplicateJoin(),
        "c-rep": ControlledReplicateJoin(),
        "c-rep-l": ControlledReplicateJoin(
            limits=ReplicationLimits.from_query(query, d_max)
        ),
    }


@pytest.mark.parametrize("query_name", sorted(QUERIES))
@pytest.mark.parametrize("algo_name", ["cascade", "all-rep", "c-rep", "c-rep-l"])
def test_against_oracle(datasets, query_name, algo_name):
    query = QUERIES[query_name]
    expected = brute_force_join(query, datasets)
    algorithm = algorithms_for(query)[algo_name]
    result = algorithm.run(query, datasets, GRID)
    assert result.tuples == expected


class TestSelfJoinQueries:
    @pytest.fixture(scope="class")
    def roads(self):
        # The chain-structured generator already yields realistic overlap
        # degree (~2) at any sample size; compressing a chain sample piles
        # the walks into near-cliques whose self-join triples explode
        # quadratically, so keep original coordinates.
        rects = generate_california(CaliforniaSpec(n=400, seed=9))
        return {"roads": rects}

    @pytest.mark.parametrize("algo_name", ["cascade", "all-rep", "c-rep", "c-rep-l"])
    def test_q2s_star(self, roads, algo_name):
        query = Query.self_chain("roads", 3, Overlap())
        from repro.data.transforms import dataset_space, max_diagonal

        grid = GridPartitioning.square(dataset_space(roads), 16)
        expected = brute_force_join(query, roads)
        algorithm = make_algorithm(algo_name, query=query, d_max=max_diagonal(roads))
        result = algorithm.run(query, roads, grid)
        assert result.tuples == expected


class TestMetrics:
    def test_allrep_replicates_everything(self, datasets):
        query = QUERIES["overlap-chain"]
        result = AllReplicateJoin().run(query, datasets, GRID)
        assert result.stats.rectangles_marked == 3 * SPEC.n
        # each rectangle goes to at least its own cell
        assert result.stats.rectangles_after_replication >= 3 * SPEC.n

    def test_crep_marks_fewer_than_allrep(self, datasets):
        query = QUERIES["overlap-chain"]
        crep = ControlledReplicateJoin().run(query, datasets, GRID)
        assert 0 < crep.stats.rectangles_marked < 3 * SPEC.n

    def test_crepl_same_marks_less_replication(self, datasets):
        query = QUERIES["range-chain"]
        crep = ControlledReplicateJoin().run(query, datasets, GRID)
        crepl = ControlledReplicateJoin(
            limits=ReplicationLimits.from_query(query, SPEC.max_diagonal)
        ).run(query, datasets, GRID)
        # The limit never changes WHICH rectangles are marked (§7.10).
        assert crepl.stats.rectangles_marked == crep.stats.rectangles_marked
        assert (
            crepl.stats.rectangles_after_replication
            <= crep.stats.rectangles_after_replication
        )
        assert crepl.stats.shuffled_records <= crep.stats.shuffled_records

    def test_allrep_shuffles_most(self, datasets):
        query = QUERIES["overlap-chain"]
        allrep = AllReplicateJoin().run(query, datasets, GRID)
        crep = ControlledReplicateJoin().run(query, datasets, GRID)
        assert allrep.stats.shuffled_records > crep.stats.shuffled_records

    def test_cascade_has_no_replication_metrics(self, datasets):
        query = QUERIES["overlap-chain"]
        result = CascadeJoin().run(query, datasets, GRID)
        assert result.stats.rectangles_marked == 0
        assert result.stats.rectangles_after_replication == 0

    def test_output_tuple_counter_matches(self, datasets):
        query = QUERIES["overlap-chain"]
        for algorithm in algorithms_for(query).values():
            result = algorithm.run(query, datasets, GRID)
            assert result.stats.output_tuples == len(result.tuples)

    def test_simulated_seconds_positive(self, datasets):
        query = QUERIES["overlap-chain"]
        result = ControlledReplicateJoin().run(query, datasets, GRID)
        assert result.stats.simulated_seconds > 0
        assert len(result.stats.job_seconds) == 2  # two MR rounds

    def test_cascade_job_count_is_slots_minus_one(self, datasets):
        query = QUERIES["overlap-chain"]
        result = CascadeJoin().run(query, datasets, GRID)
        assert len(result.stats.job_seconds) == 2

    def test_stats_from_workflow_roundtrip(self, datasets):
        query = QUERIES["overlap-chain"]
        result = ControlledReplicateJoin().run(query, datasets, GRID)
        rebuilt = JoinStats.from_workflow(result.workflow)
        assert rebuilt == result.stats


class TestReuse:
    def test_same_cluster_reusable_across_algorithms(self, datasets):
        query = QUERIES["overlap-chain"]
        cluster = Cluster()
        expected = brute_force_join(query, datasets)
        for algorithm in algorithms_for(query).values():
            result = algorithm.run(query, datasets, GRID, cluster)
            assert result.tuples == expected

    def test_rerun_on_same_cluster_overwrites_output(self, datasets):
        query = QUERIES["overlap-chain"]
        cluster = Cluster()
        algo = ControlledReplicateJoin()
        first = algo.run(query, datasets, GRID, cluster)
        second = algo.run(query, datasets, GRID, cluster)
        assert first.tuples == second.tuples
