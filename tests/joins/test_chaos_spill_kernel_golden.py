"""Golden equivalence of chaos x spilling x the numpy kernel.

Each robustness axis is individually golden-tested: absorbed task
faults (test_recovery_golden), worker loss (test_worker_failure_golden),
memory-budget spills crossed with the kernel plane
(test_spill_kernel_golden).  This suite pins the *triple* interaction:
Controlled-Replicate under a spill-forcing memory budget, on the numpy
kernel, with a fault plan that kills a task AND a whole worker — on
thread and process executors — must stay byte-identical to the clean
budgeted serial reference.  Spill telemetry in particular must not
move: spill points are a function of estimated record bytes, and
re-executed attempts replace (never add to) their task's counters.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import derive_grid
from repro.experiments.workloads import synthetic_chain
from repro.joins.registry import make_algorithm
from repro.kernels import numpy_or_none
from repro.mapreduce.engine import Cluster
from repro.mapreduce.faults import FaultPlan, RetryPolicy
from repro.query.predicates import Overlap
from repro.query.query import Query

pytestmark = pytest.mark.skipif(
    numpy_or_none() is None, reason="numpy not available"
)

N_PER_RELATION = 500
SPACE_SIDE = 5_300.0
SEED = 11
#: forces several spill runs per map task at this workload size
BUDGET = 2_048
OUTPUT_DIR = "controlled-replicate/output"

EXECUTORS = [("thread", 4), ("process", 4)]

#: A task failure plus a worker death whose committed map outputs must
#: be invalidated and re-executed (the reduce-phase death fires after
#: the map phase committed, in every job of the chain).
CHAOS = (
    FaultPlan()
    .fail_task("map", 0, attempt=0, job=None)
    .fail_worker("w1", phase="reduce", index=0, attempt=0, job=None)
)

#: Telemetry the chaotic run is allowed (required, even) to add on top
#: of the clean reference.  Spill counters are deliberately NOT here:
#: they must match the reference exactly.
_RECOVERY_PREFIXES = (
    "task_",
    "speculative_",
    "worker",
    "map_output_lost",
    "tasks_reexecuted",
    "watchdog_",
)


@pytest.fixture(scope="module")
def workload():
    return synthetic_chain(
        N_PER_RELATION, SPACE_SIDE, names=("R1", "R2", "R3"), seed=SEED
    )


def _strip_telemetry(counters_dict):
    return {
        group: {
            name: value
            for name, value in names.items()
            if not name.startswith(_RECOVERY_PREFIXES)
        }
        for group, names in counters_dict.items()
    }


def _spill_counters(result):
    eng = result.workflow.counters.as_dict()["engine"]
    return {k: v for k, v in eng.items() if k.startswith("spill")}


def _run(workload, *, plan=None, retry=None, executor="serial", workers=1):
    query = Query.chain(["R1", "R2", "R3"], Overlap())
    grid = derive_grid(workload.datasets)
    kwargs = {}
    if retry is not None:
        kwargs["retry"] = retry
    cluster = Cluster(
        executor=executor,
        num_workers=workers,
        kernel="numpy",
        memory_budget=BUDGET,
        fault_plan=plan,
        **kwargs,
    )
    algorithm = make_algorithm("c-rep", query=query, d_max=workload.d_max)
    result = algorithm.run(query, workload.datasets, grid, cluster)
    snapshot = {
        path: tuple(cluster.dfs.read_file(path))
        for path in cluster.dfs.resolve(OUTPUT_DIR)
    }
    return snapshot, result


@pytest.fixture(scope="module")
def golden(workload):
    """Clean budgeted numpy serial run: the reference the chaos legs
    must reproduce byte for byte."""
    return _run(workload)


@pytest.mark.parametrize(("executor", "workers"), EXECUTORS)
def test_chaos_spilled_numpy_leg_matches_clean_reference(
    workload, golden, executor, workers
):
    ref_snapshot, ref = golden
    snapshot, result = _run(
        workload,
        plan=CHAOS,
        retry=RetryPolicy(max_attempts=3),
        executor=executor,
        workers=workers,
    )
    # Part files and join output: byte-identical.
    assert snapshot == ref_snapshot
    assert result.tuples == ref.tuples
    # Canonical simulated time unmoved: retries and re-executions are
    # charged to the non-canonical overhead terms.
    assert result.stats.simulated_seconds == ref.stats.simulated_seconds
    # Spill telemetry identical: worker loss must not shift spill points.
    assert _spill_counters(result) == _spill_counters(ref)
    assert _spill_counters(ref).get("spilled_records", 0) > 0
    # All other counters identical modulo the recovery telemetry.
    assert _strip_telemetry(result.workflow.counters.as_dict()) == _strip_telemetry(
        ref.workflow.counters.as_dict()
    )
    # ... and the chaos really happened: the worker died and its
    # committed map outputs were re-executed.
    eng = result.workflow.counters.engine
    assert eng("worker_failures") >= 1
    assert eng("map_output_lost") >= 1
    assert eng("tasks_reexecuted") >= 1
    assert eng("task_failures") >= 1


def test_reference_spills_but_carries_no_recovery_telemetry(golden):
    _, ref = golden
    assert ref.tuples
    assert _spill_counters(ref).get("spilled_records", 0) > 0
    eng_counters = ref.workflow.counters.as_dict()["engine"]
    assert not any(
        k.startswith(_RECOVERY_PREFIXES) for k in eng_counters
    )
