"""Unit tests for the Controlled-Replicate marking conditions C1-C4.

The central scenario is the paper's Figure 4: a 4-chain overlap query on
a 2x2 grid where reducer c1 sees only the two middle rectangles of an
output tuple and must mark exactly those.
"""

import pytest

from repro.geometry.rectangle import Rect
from repro.joins.marking import MarkingEngine
from repro.query.predicates import Overlap, Range
from repro.query.query import Query

# ----------------------------------------------------------------------
# Figure 4 reconstruction: Q1 = R1 Ov R2 ∧ R2 Ov R3 ∧ R3 Ov R4 on a 2x2
# grid over [0,100]^2.  v1 and w1 start in c1 and cross its boundary;
# u1 lives in c2, x1 in c3; the tuple's owner cell is c4.
# ----------------------------------------------------------------------
U1 = Rect(52, 68, 6, 4)  # R1, inside c2
V1 = Rect(40, 70, 20, 5)  # R2, starts c1, crosses into c2
W1 = Rect(44, 70, 5, 30)  # R3, starts c1, crosses into c3
X1 = Rect(42, 45, 6, 5)  # R4, inside c3


@pytest.fixture
def query4() -> Query:
    return Query.chain(["R1", "R2", "R3", "R4"], Overlap())


@pytest.fixture
def engine4(grid4, query4) -> MarkingEngine:
    return MarkingEngine(query4, grid4)


class TestFigure4:
    def test_geometry_sanity(self, grid4):
        assert grid4.cell_of(V1).cell_id == 0
        assert grid4.cell_of(W1).cell_id == 0
        assert grid4.cell_of(U1).cell_id == 1
        assert grid4.cell_of(X1).cell_id == 2
        assert U1.intersects(V1) and V1.intersects(W1) and W1.intersects(X1)
        # u1 and x1 do not touch c1
        c1 = grid4.cell(0, 0)
        assert not U1.intersects(c1.extent)
        assert not X1.intersects(c1.extent)

    def test_c1_marks_the_crossing_middle_pair(self, grid4, engine4):
        received = {"R2": [(0, V1)], "R3": [(0, W1)]}
        decision = engine4.select_marked(grid4.cell(0, 0), received)
        assert decision.marked == {("R2", 0), ("R3", 0)}

    def test_c1_would_not_mark_non_overlapping_pair(self, grid4, engine4):
        # Condition C1: if v1 and w1 did not overlap, neither could be
        # part of an output tuple through this pair.
        v_far = Rect(26, 95, 30, 4)  # crosses but high above w1
        received = {"R2": [(0, v_far)], "R3": [(0, W1)]}
        decision = engine4.select_marked(grid4.cell(0, 0), received)
        # v_far still crosses alone; singleton {R2} requires crossing on
        # both its edges -> marked.  w1 likewise.  The *pair* condition
        # matters for rectangles that do not cross on their own:
        assert ("R2", 0) in decision.marked  # crossing singleton

    def test_c2_non_crossing_middle_not_marked(self, grid4, engine4):
        # A middle rectangle strictly inside the cell with no crossing
        # partner fails C2 in every subset (paper set U5 = (v2, w1)).
        v_inside = Rect(10, 90, 5, 5)
        received = {"R2": [(7, v_inside)]}
        decision = engine4.select_marked(grid4.cell(0, 0), received)
        assert decision.marked == set()

    def test_u1_marked_at_c2_via_crossing_partner(self, grid4, engine4):
        # u1 does not cross c2, but (u1, v1) qualifies: the outside edge
        # R2-R3 only constrains v1, which crosses.
        received = {"R1": [(0, U1)], "R2": [(0, V1)]}
        decision = engine4.select_marked(grid4.cell(0, 1), received)
        assert ("R1", 0) in decision.marked

    def test_u1_not_marked_without_partner(self, grid4, engine4):
        # Alone, u1 fails C2 (it does not cross and R1's edge to R2 is
        # an outside edge of the singleton set).
        received = {"R1": [(0, U1)]}
        decision = engine4.select_marked(grid4.cell(0, 1), received)
        assert decision.marked == set()

    def test_marking_only_for_rects_starting_in_cell(self, grid4, engine4):
        # v1 is received at c2 but starts in c1; c2 never marks it.
        received = {"R1": [(0, U1)], "R2": [(0, V1)]}
        decision = engine4.select_marked(grid4.cell(0, 1), received)
        assert ("R2", 0) not in decision.marked


class TestC3BoundaryCase:
    def test_full_tuple_local_not_marked(self, grid4):
        # All four chain members strictly inside one cell: every subset
        # either violates C2 (nothing crosses) or C3 (the full set), so
        # nothing replicates — the cell computes the tuple locally.
        query = Query.chain(["R1", "R2", "R3", "R4"], Overlap())
        engine = MarkingEngine(query, grid4)
        received = {
            "R1": [(0, Rect(5, 95, 4, 4))],
            "R2": [(0, Rect(8, 93, 4, 4))],
            "R3": [(0, Rect(11, 91, 4, 4))],
            "R4": [(0, Rect(14, 89, 4, 4))],
        }
        decision = engine.select_marked(grid4.cell(0, 0), received)
        assert decision.marked == set()


class TestRangeC2:
    """Figure 7: the range variant of condition C2 (Section 8)."""

    @pytest.fixture
    def engine_range(self, grid4):
        query = Query.chain(["R1", "R2", "R3"], Range(10.0))
        return MarkingEngine(query, grid4)

    def test_near_boundary_marked(self, grid4, engine_range):
        # v1 is within d of cell c2 (gap 2), u1 within d of v1: both
        # are marked (the paper's u1, v1 case).
        u1 = Rect(38, 80, 3, 3)
        v1 = Rect(45, 80, 3, 3)
        received = {"R1": [(0, u1)], "R2": [(0, v1)]}
        decision = engine_range.select_marked(grid4.cell(0, 0), received)
        assert decision.marked == {("R1", 0), ("R2", 0)}

    def test_far_from_every_boundary_not_marked(self, grid4, engine_range):
        # v2: no cell within distance d -> condition C2 fails (paper's v2).
        v2 = Rect(20, 70, 2, 2)
        received = {"R2": [(0, v2)]}
        decision = engine_range.select_marked(grid4.cell(0, 0), received)
        assert decision.marked == set()

    def test_interior_slot_shielded_by_neighbors(self, grid4):
        # With both its neighbors in the witness set, a far-from-boundary
        # middle rectangle still gets marked if an end crosses.
        query = Query.chain(["R1", "R2", "R3"], Range(10.0))
        engine = MarkingEngine(query, grid4)
        u = Rect(10, 80, 3, 3)
        v = Rect(16, 80, 3, 3)  # 3 from u, far from all boundaries
        w = Rect(45, 80, 3, 3)  # within 10 of v? dx = 45-19 = 26: no!
        received = {"R1": [(0, u)], "R2": [(0, v)], "R3": [(0, w)]}
        decision = engine.select_marked(grid4.cell(0, 0), received)
        # (u, v, w) is inconsistent (v-w too far); singletons/pairs fail
        # C2 for v; u fails too (gap 37 > 10); w qualifies alone (gap 2).
        assert decision.marked == {("R3", 0)}


class TestHybridC2:
    def test_per_edge_conditions(self, grid4):
        # A Ov B ∧ B Ra(10) C: at cell c1, a B-rectangle forming an
        # output with an outside C must be within 10 of another cell,
        # while an outside A requires a hard crossing.
        query = Query.chain(["A", "B", "C"], [Overlap(), Range(10.0)])
        engine = MarkingEngine(query, grid4)
        # B near the boundary (gap 2 <= 10) but not crossing: the
        # singleton {B} requires BOTH edges outside: crossing for A
        # (fails) — but the pair (A, B) shields the A edge.
        a = Rect(40, 80, 6, 3)
        b = Rect(45, 78, 3, 3)  # overlaps a; 2 from the x=50 boundary
        received = {"A": [(0, a)], "B": [(0, b)]}
        decision = engine.select_marked(grid4.cell(0, 0), received)
        assert ("B", 0) in decision.marked
        # Without the A partner, the B singleton fails.
        decision2 = engine.select_marked(grid4.cell(0, 0), {"B": [(0, b)]})
        assert decision2.marked == set()


class TestWitnessPropagation:
    def test_all_members_of_witness_marked(self, grid4, engine4, query4):
        # When (v1, w1) qualifies at c1, both its members starting in c1
        # are marked even though the search starts from one of them.
        received = {"R2": [(0, V1)], "R3": [(0, W1)]}
        decision = engine4.select_marked(grid4.cell(0, 0), received)
        assert len(decision.marked) == 2

    def test_self_join_marking(self, grid4):
        query = Query.self_chain("R", 3, Overlap())
        engine = MarkingEngine(query, grid4)
        # Two overlapping crossing rectangles of the same dataset.
        r0 = Rect(40, 80, 15, 4)  # crosses into c2
        r1 = Rect(42, 82, 15, 4)  # crosses into c2
        received = {"R": [(0, r0), (1, r1)]}
        decision = engine.select_marked(grid4.cell(0, 0), received)
        assert decision.marked == {("R", 0), ("R", 1)}


class TestFourChainMarking:
    """Deeper marking cases on the 4-chain (Figure 5's query)."""

    @pytest.fixture
    def engine(self, grid4, query4):
        return MarkingEngine(query4, grid4)

    def test_interior_shielded_pair(self, grid4, engine):
        # (v, w) with only w crossing: the set {R2, R3} requires v to
        # cross for the R1-R2 edge, so only w's singleton... w has edges
        # R2-R3 (inside nothing) — w alone requires crossing for BOTH
        # R2-R3 and R3-R4 edges; it crosses, so w is marked; v is not.
        v = Rect(10, 90, 5, 5)  # inside c1
        w = Rect(12, 88, 45, 5)  # crosses into c2
        decision = engine.select_marked(
            grid4.cell(0, 0), {"R2": [(0, v)], "R3": [(0, w)]}
        )
        assert ("R3", 0) in decision.marked
        assert ("R2", 0) not in decision.marked

    def test_chain_of_witnesses_marks_inner_rect(self, grid4, engine):
        # u-v-w consistent with only w crossing: subset {R1,R2,R3}
        # requires w (edge R3-R4) to cross -> all three marked.
        u = Rect(5, 95, 4, 4)
        v = Rect(7, 93, 4, 4)
        w = Rect(9, 91, 45, 5)  # crosses
        decision = engine.select_marked(
            grid4.cell(0, 0),
            {"R1": [(0, u)], "R2": [(0, v)], "R3": [(0, w)]},
        )
        assert decision.marked == {("R1", 0), ("R2", 0), ("R3", 0)}

    def test_inconsistent_chain_blocks_inner_rects(self, grid4, engine):
        # Same shape but u does NOT overlap v: {R1,R2,*} sets are
        # inconsistent, and v (non-crossing) then fails C2 in every
        # remaining subset ({R2} and {R2,R3} both expose the R1-R2
        # edge).  Only the crossing w survives, via its singleton.
        u = Rect(5, 95, 1, 1)
        v = Rect(10, 90, 4, 4)
        w = Rect(12, 88, 45, 5)
        decision = engine.select_marked(
            grid4.cell(0, 0),
            {"R1": [(0, u)], "R2": [(0, v)], "R3": [(0, w)]},
        )
        assert decision.marked == {("R3", 0)}

    def test_ops_accounting_monotone(self, grid4, engine):
        # More candidate rectangles -> at least as much search work.
        small = {"R2": [(0, Rect(40, 80, 15, 4))]}
        big = {
            "R2": [(i, Rect(40, 80 - i, 15, 4)) for i in range(8)],
            "R3": [(i, Rect(41, 79 - i, 15, 4)) for i in range(8)],
        }
        ops_small = engine.select_marked(grid4.cell(0, 0), small).ops
        ops_big = engine.select_marked(grid4.cell(0, 0), big).ops
        assert ops_big >= ops_small
