"""Tests for the plane-sweep pairwise kernel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import JoinError
from repro.geometry.ops import chebyshev_distance
from repro.geometry.rectangle import Rect
from repro.joins.sweep import sweep_join_count, sweep_pairs


def nested_loop_pairs(left, right, d):
    return {
        (lid, rid)
        for lid, lrect in left
        for rid, rrect in right
        if chebyshev_distance(lrect, rrect) <= d
    }


class TestBasics:
    def test_simple_overlap(self):
        left = [(0, Rect(0, 10, 5, 5))]
        right = [(0, Rect(4, 9, 5, 5)), (1, Rect(20, 10, 2, 2))]
        assert set(sweep_pairs(left, right)) == {(0, 0)}

    def test_touching_counts(self):
        left = [(0, Rect(0, 10, 5, 5))]
        right = [(0, Rect(5, 10, 5, 5))]
        assert set(sweep_pairs(left, right)) == {(0, 0)}

    def test_distance(self):
        left = [(0, Rect(0, 10, 2, 2))]
        right = [(0, Rect(5, 10, 2, 2))]  # dx = 3
        assert set(sweep_pairs(left, right, 3.0)) == {(0, 0)}
        assert set(sweep_pairs(left, right, 2.9)) == set()

    def test_empty_sides(self):
        assert list(sweep_pairs([], [(0, Rect(0, 1, 1, 1))])) == []
        assert list(sweep_pairs([(0, Rect(0, 1, 1, 1))], [])) == []

    def test_negative_distance_rejected(self):
        with pytest.raises(JoinError):
            list(sweep_pairs([(0, Rect(0, 1, 1, 1))], [(0, Rect(0, 1, 1, 1))], -1))

    def test_count_helper(self):
        left = [(i, Rect(i * 2.0, 10, 3, 3)) for i in range(5)]
        right = [(i, Rect(i * 2.0 + 1, 9, 3, 3)) for i in range(5)]
        assert sweep_join_count(left, right) == len(
            nested_loop_pairs(left, right, 0.0)
        )

    def test_each_pair_once(self):
        left = [(0, Rect(0, 100, 50, 50)), (1, Rect(10, 90, 50, 50))]
        right = [(0, Rect(5, 95, 50, 50)), (1, Rect(20, 80, 50, 50))]
        pairs = list(sweep_pairs(left, right))
        assert len(pairs) == len(set(pairs)) == 4


coord = st.floats(min_value=0, max_value=500, allow_nan=False)
side = st.floats(min_value=0, max_value=120, allow_nan=False)
rects = st.builds(Rect, x=coord, y=coord, l=side, b=side)


def bag():
    return st.lists(rects, min_size=0, max_size=30).map(
        lambda rs: list(enumerate(rs))
    )


@settings(max_examples=80, deadline=None)
@given(bag(), bag(), st.floats(min_value=0, max_value=80, allow_nan=False))
def test_sweep_matches_nested_loop(left, right, d):
    got = set(sweep_pairs(left, right, d))
    assert got == nested_loop_pairs(left, right, d)
