"""Golden equivalence of the typed record path (PR 2 tentpole).

The typed path lets records cross the shuffle and job boundaries as
Python objects; the seed codec path (``Cluster(typed_io=False)``)
re-parses every record from its encoded line on every read, exactly as
the string-era engine did.  Both must be indistinguishable from the
outside: byte-identical final DFS output and identical cost-model
counters, for every algorithm and every executor back-end.

The reference for each algorithm is one seed-path serial run on a
seeded Table-2-shaped workload (Q2 chain over three relations, reduced
n); the typed path is then checked on the serial, thread and process
executors against that single golden snapshot.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import derive_grid
from repro.experiments.workloads import synthetic_chain
from repro.joins.registry import ALGORITHMS, make_algorithm
from repro.mapreduce.engine import Cluster
from repro.query.predicates import Overlap
from repro.query.query import Query

#: Reduced Table-2 shape: same generator/space/seed family as the
#: benchmarks, small enough to run 4 algorithms x 4 configurations.
N_PER_RELATION = 700
SPACE_SIDE = 6_300.0
SEED = 11

#: Output directory of each algorithm, by registry name.
OUTPUT_DIRS = {
    "cascade": "two-way-cascade/output",
    "all-rep": "all-replicate/output",
    "c-rep": "controlled-replicate/output",
    "c-rep-l": "controlled-replicate-limit/output",
}

EXECUTORS = [("serial", 1), ("thread", 2), ("process", 2)]


@pytest.fixture(scope="module")
def workload():
    return synthetic_chain(
        N_PER_RELATION, SPACE_SIDE, names=("R1", "R2", "R3"), seed=SEED
    )


def _run(workload, algorithm_name, *, typed_io, executor="serial", workers=1):
    """One full join run on a fresh cluster; returns (snapshot, stats, tuples)."""
    query = Query.chain(["R1", "R2", "R3"], Overlap())
    grid = derive_grid(workload.datasets)
    cluster = Cluster(executor=executor, num_workers=workers, typed_io=typed_io)
    algorithm = make_algorithm(
        algorithm_name, query=query, d_max=workload.d_max
    )
    result = algorithm.run(query, workload.datasets, grid, cluster)
    snapshot = {
        path: tuple(cluster.dfs.read_file(path))
        for path in cluster.dfs.resolve(OUTPUT_DIRS[algorithm_name])
    }
    return snapshot, result.stats, result.tuples


def _counters(stats):
    """Every JoinStats field that must be executor/path independent
    (wall_clock_seconds is real time and legitimately varies)."""
    return {
        "simulated_seconds": stats.simulated_seconds,
        "shuffled_records": stats.shuffled_records,
        "rectangles_marked": stats.rectangles_marked,
        "rectangles_after_replication": stats.rectangles_after_replication,
        "output_tuples": stats.output_tuples,
        "job_seconds": stats.job_seconds,
    }


@pytest.fixture(scope="module")
def golden(workload):
    """Seed-path serial run per algorithm: the 'before' the typed path
    must reproduce exactly."""
    return {
        name: _run(workload, name, typed_io=False) for name in ALGORITHMS
    }


@pytest.mark.parametrize("algorithm_name", ALGORITHMS)
@pytest.mark.parametrize(("executor", "workers"), EXECUTORS)
def test_typed_path_matches_seed_codec_path(
    workload, golden, algorithm_name, executor, workers
):
    ref_snapshot, ref_stats, ref_tuples = golden[algorithm_name]
    snapshot, stats, tuples = _run(
        workload,
        algorithm_name,
        typed_io=True,
        executor=executor,
        workers=workers,
    )
    assert tuples == ref_tuples
    # Part files: same names, byte-identical content.
    assert snapshot == ref_snapshot
    assert _counters(stats) == _counters(ref_stats)


@pytest.mark.parametrize("algorithm_name", ALGORITHMS)
def test_golden_output_is_nonempty(golden, algorithm_name):
    """Guard the guard: an empty snapshot would make the equivalence
    assertions vacuously true."""
    snapshot, __, tuples = golden[algorithm_name]
    assert tuples
    assert any(lines for lines in snapshot.values())
