"""Unit tests for Controlled-Replicate internals (rounds, tagging, hooks)."""

import pytest

from repro.data.io import decode_tagged
from repro.data.synthetic import SyntheticSpec, generate_relations
from repro.geometry.rectangle import Rect
from repro.grid.partitioning import GridPartitioning
from repro.joins.controlled import ControlledReplicateJoin
from repro.joins.marking import MarkingDecision
from repro.joins.reference import brute_force_join
from repro.mapreduce.engine import Cluster
from repro.query.predicates import Overlap
from repro.query.query import Query

GRID = GridPartitioning(Rect.from_corners(0, 0, 600, 600), 4, 4)


@pytest.fixture(scope="module")
def datasets():
    spec = SyntheticSpec(
        n=180, x_range=(0, 600), y_range=(0, 600),
        l_range=(0, 80), b_range=(0, 80), seed=17,
    )
    return generate_relations(spec, ["R1", "R2", "R3"])


@pytest.fixture(scope="module")
def query():
    return Query.chain(["R1", "R2", "R3"], Overlap())


class TestRoundOne:
    def test_each_rectangle_tagged_exactly_once(self, datasets, query):
        cluster = Cluster()
        ControlledReplicateJoin().run(query, datasets, GRID, cluster)
        lines = cluster.dfs.read_dir("controlled-replicate/marked")
        tagged = [decode_tagged(line) for line in lines]
        keys = [(t.dataset, t.rid) for t in tagged]
        assert len(keys) == len(set(keys)) == 3 * 180

    def test_tagged_rects_roundtrip_coordinates(self, datasets, query):
        cluster = Cluster()
        ControlledReplicateJoin().run(query, datasets, GRID, cluster)
        lines = cluster.dfs.read_dir("controlled-replicate/marked")
        originals = {
            (ds, rid): rect for ds, rects in datasets.items() for rid, rect in rects
        }
        for line in lines:
            t = decode_tagged(line)
            assert t.rect == originals[(t.dataset, t.rid)]

    def test_marked_rectangles_counted(self, datasets, query):
        result = ControlledReplicateJoin().run(query, datasets, GRID)
        cluster = Cluster()
        ControlledReplicateJoin().run(query, datasets, GRID, cluster)
        lines = cluster.dfs.read_dir("controlled-replicate/marked")
        marked = sum(decode_tagged(line).marked for line in lines)
        assert marked == result.stats.rectangles_marked


class TestMarkingFactoryHook:
    def test_custom_factory_used(self, datasets, query):
        calls = []

        class Recorder:
            def __init__(self, q, g):
                calls.append((q, g))
                from repro.joins.marking import MarkingEngine

                self._engine = MarkingEngine(q, g)

            def select_marked(self, cell, received):
                return self._engine.select_marked(cell, received)

        algo = ControlledReplicateJoin(marking_factory=Recorder)
        result = algo.run(query, datasets, GRID)
        assert calls and calls[0][0] is query
        assert result.tuples == brute_force_join(query, datasets)

    def test_mark_everything_factory_still_correct(self, datasets, query):
        class MarkAll:
            def __init__(self, q, g):
                self.grid = g

            def select_marked(self, cell, received):
                marked = {
                    (ds, rid)
                    for ds, rects in received.items()
                    for rid, rect in rects
                    if self.grid.cell_of(rect).cell_id == cell.cell_id
                }
                return MarkingDecision(marked=marked, ops=0)

        result = ControlledReplicateJoin(marking_factory=MarkAll).run(
            query, datasets, GRID
        )
        assert result.tuples == brute_force_join(query, datasets)


class TestNaming:
    def test_names_differ_between_variants(self):
        from repro.joins.limits import ReplicationLimits

        plain = ControlledReplicateJoin()
        q = Query.chain(["A", "B"], Overlap())
        limited = ControlledReplicateJoin(
            limits=ReplicationLimits.from_query(q, 5.0)
        )
        assert plain.name == "controlled-replicate"
        assert limited.name == "controlled-replicate-limit"
