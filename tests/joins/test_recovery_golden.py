"""Golden equivalence under absorbed chaos (fault-tolerance tentpole).

The acceptance contract: for any FaultPlan whose failures stay within
``max_attempts``, every algorithm must produce part files, counters
(modulo the new ``task_*``/``speculative_*`` telemetry) and simulated
seconds byte-identical to the fault-free run — on all three executors.

The reference per algorithm is one fault-free serial run on a seeded
Table-2-shaped workload; the chaotic run kills one map task and one
reduce task on their first attempt (in *every* job of the chain, since
the specs are job-wildcarded) and must be indistinguishable from it.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import derive_grid
from repro.experiments.workloads import synthetic_chain
from repro.joins.registry import ALGORITHMS, make_algorithm
from repro.mapreduce.engine import Cluster
from repro.mapreduce.faults import FaultPlan, RetryPolicy
from repro.query.predicates import Overlap
from repro.query.query import Query

N_PER_RELATION = 500
SPACE_SIDE = 5_300.0
SEED = 11

OUTPUT_DIRS = {
    "cascade": "two-way-cascade/output",
    "all-rep": "all-replicate/output",
    "c-rep": "controlled-replicate/output",
    "c-rep-l": "controlled-replicate-limit/output",
}

EXECUTORS = [("serial", 1), ("thread", 2), ("process", 2)]

#: Kill one map and one reduce task on their first attempt, in every
#: job of every chain (job=None wildcards; attempt=0 means only the
#: first try fails, so max_attempts=2 always absorbs it).
CHAOS = (
    FaultPlan()
    .fail_task("map", 0, attempt=0, job=None)
    .fail_task("reduce", 1, attempt=0, job=None)
)


@pytest.fixture(scope="module")
def workload():
    return synthetic_chain(
        N_PER_RELATION, SPACE_SIDE, names=("R1", "R2", "R3"), seed=SEED
    )


def _strip_telemetry(counters_dict):
    """Counters minus the recovery telemetry the faulted run is allowed
    (required, even) to add."""
    return {
        group: {
            name: value
            for name, value in names.items()
            if not name.startswith(("task_", "speculative_"))
        }
        for group, names in counters_dict.items()
    }


def _run(workload, algorithm_name, *, plan=None, retry=None,
         executor="serial", workers=1):
    query = Query.chain(["R1", "R2", "R3"], Overlap())
    grid = derive_grid(workload.datasets)
    kwargs = {}
    if retry is not None:
        kwargs["retry"] = retry
    cluster = Cluster(
        executor=executor, num_workers=workers, fault_plan=plan, **kwargs
    )
    algorithm = make_algorithm(algorithm_name, query=query, d_max=workload.d_max)
    result = algorithm.run(query, workload.datasets, grid, cluster)
    snapshot = {
        path: tuple(cluster.dfs.read_file(path))
        for path in cluster.dfs.resolve(OUTPUT_DIRS[algorithm_name])
    }
    return snapshot, result


@pytest.fixture(scope="module")
def golden(workload):
    """One fault-free serial run per algorithm."""
    return {name: _run(workload, name) for name in ALGORITHMS}


@pytest.mark.parametrize("algorithm_name", ALGORITHMS)
@pytest.mark.parametrize(("executor", "workers"), EXECUTORS)
def test_absorbed_faults_change_nothing(
    workload, golden, algorithm_name, executor, workers
):
    ref_snapshot, ref = golden[algorithm_name]
    snapshot, result = _run(
        workload,
        algorithm_name,
        plan=CHAOS,
        retry=RetryPolicy(max_attempts=2),
        executor=executor,
        workers=workers,
    )
    # Part files: same names, byte-identical content.
    assert snapshot == ref_snapshot
    assert result.tuples == ref.tuples
    # Simulated time is canonical: retries are charged to
    # fault_overhead_s, never to the modelled makespan.
    assert result.stats.simulated_seconds == ref.stats.simulated_seconds
    assert _strip_telemetry(result.workflow.counters.as_dict()) == _strip_telemetry(
        ref.workflow.counters.as_dict()
    )
    # ... and the telemetry proves the faults actually fired: each job
    # retried its killed map task and (where it reduces) reduce task.
    eng = result.workflow.counters.engine
    assert eng("task_failures") >= 2
    total_tasks = sum(
        len(r.map_tasks) + len(r.reduce_tasks)
        for r in result.workflow.job_results
    )
    assert eng("task_attempts") == total_tasks + eng("task_failures")
    overhead = sum(r.cost.fault_overhead_s for r in result.workflow.job_results)
    assert overhead > 0.0


@pytest.mark.parametrize("algorithm_name", ALGORITHMS)
def test_golden_run_is_nonempty_and_untelemetered(golden, algorithm_name):
    """Guard the guard: the fault-free reference must produce output and
    must not itself carry recovery counters (fast path)."""
    snapshot, ref = golden[algorithm_name]
    assert ref.tuples
    assert any(lines for lines in snapshot.values())
    eng_counters = ref.workflow.counters.as_dict()["engine"]
    assert not any(
        k.startswith(("task_", "speculative_")) for k in eng_counters
    )
