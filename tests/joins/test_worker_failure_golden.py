"""Golden equivalence under absorbed worker loss (failure-domain tentpole).

The acceptance contract: for any FaultPlan whose worker deaths leave at
least one live worker and whose induced retries stay within
``max_attempts``, every algorithm must produce part files, counters
(modulo recovery telemetry) and canonical simulated seconds
byte-identical to the fault-free run — on all three executors.

The chaos here is stronger than task-level faults: a reduce-phase
worker death invalidates the map outputs that worker already
*committed*, forcing Hadoop-style upstream map re-execution, and a
map-phase death abandons in-flight attempts mid-round.  Both are
charged to the non-canonical ``recovery_overhead_s`` term only.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import derive_grid
from repro.experiments.workloads import synthetic_chain
from repro.joins.registry import ALGORITHMS, make_algorithm
from repro.mapreduce.engine import Cluster
from repro.mapreduce.faults import FaultPlan, RetryPolicy
from repro.obs.ledger import MemorySink, RunLedger
from repro.query.predicates import Overlap
from repro.query.query import Query

N_PER_RELATION = 500
SPACE_SIDE = 5_300.0
SEED = 11

OUTPUT_DIRS = {
    "cascade": "two-way-cascade/output",
    "all-rep": "all-replicate/output",
    "c-rep": "controlled-replicate/output",
    "c-rep-l": "controlled-replicate-limit/output",
}

EXECUTORS = [("serial", 4), ("thread", 4), ("process", 4)]

#: Worker chaos in every job of every chain (job=None wildcards):
#: one plain task failure, a map-phase worker death (abandons the
#: in-flight attempts of w1), and a silent reduce-phase death of w2
#: that invalidates the map outputs w2 committed — the scenario the
#: acceptance criteria single out.
CHAOS = (
    FaultPlan()
    .fail_task("map", 0, attempt=0, job=None)
    .fail_worker("w1", phase="map", index=1, attempt=0, job=None)
    .fail_worker("w2", phase="reduce", index=0, attempt=0, silent=True, job=None)
)

RETRY = RetryPolicy(max_attempts=3)

_RECOVERY_PREFIXES = (
    "task_",
    "speculative_",
    "worker",
    "map_output_lost",
    "tasks_reexecuted",
    "watchdog_",
)


@pytest.fixture(scope="module")
def workload():
    return synthetic_chain(
        N_PER_RELATION, SPACE_SIDE, names=("R1", "R2", "R3"), seed=SEED
    )


def _strip_telemetry(counters_dict):
    return {
        group: {
            name: value
            for name, value in names.items()
            if not name.startswith(_RECOVERY_PREFIXES)
        }
        for group, names in counters_dict.items()
    }


def _run(workload, algorithm_name, *, plan=None, retry=None,
         executor="serial", workers=1, ledger=None):
    query = Query.chain(["R1", "R2", "R3"], Overlap())
    grid = derive_grid(workload.datasets)
    kwargs = {}
    if retry is not None:
        kwargs["retry"] = retry
    if ledger is not None:
        kwargs["ledger"] = ledger
    cluster = Cluster(
        executor=executor, num_workers=workers, fault_plan=plan, **kwargs
    )
    algorithm = make_algorithm(algorithm_name, query=query, d_max=workload.d_max)
    result = algorithm.run(query, workload.datasets, grid, cluster)
    snapshot = {
        path: tuple(cluster.dfs.read_file(path))
        for path in cluster.dfs.resolve(OUTPUT_DIRS[algorithm_name])
    }
    return snapshot, result


@pytest.fixture(scope="module")
def golden(workload):
    """One fault-free serial run per algorithm (same worker count, so
    task->worker assignment matches; faults are the only difference)."""
    return {
        name: _run(workload, name, executor="serial", workers=4)
        for name in ALGORITHMS
    }


@pytest.mark.parametrize("algorithm_name", ALGORITHMS)
@pytest.mark.parametrize(("executor", "workers"), EXECUTORS)
def test_absorbed_worker_loss_changes_nothing(
    workload, golden, algorithm_name, executor, workers
):
    ref_snapshot, ref = golden[algorithm_name]
    snapshot, result = _run(
        workload,
        algorithm_name,
        plan=CHAOS,
        retry=RETRY,
        executor=executor,
        workers=workers,
    )
    # Part files: same names, byte-identical content.
    assert snapshot == ref_snapshot
    assert result.tuples == ref.tuples
    # Canonical simulated time unmoved: worker recovery is charged to
    # recovery_overhead_s, never to the modelled makespan.
    assert result.stats.simulated_seconds == ref.stats.simulated_seconds
    assert _strip_telemetry(result.workflow.counters.as_dict()) == _strip_telemetry(
        ref.workflow.counters.as_dict()
    )
    # ... and the chaos really happened, identically on every executor:
    # two workers died, and the silent reduce-phase death invalidated
    # committed map outputs that were then re-executed.
    eng = result.workflow.counters.engine
    assert eng("worker_failures") >= 2
    assert eng("map_output_lost") >= 1
    assert eng("tasks_reexecuted") >= eng("map_output_lost")
    overhead = sum(
        r.cost.recovery_overhead_s for r in result.workflow.job_results
    )
    assert overhead > 0.0


def test_worker_telemetry_is_executor_independent(workload):
    """The full worker counter set — not just output — is identical on
    serial, thread and process back-ends (deterministic assignment)."""
    per_executor = []
    for executor, workers in EXECUTORS:
        _, result = _run(
            workload, "c-rep", plan=CHAOS, retry=RETRY,
            executor=executor, workers=workers,
        )
        eng = result.workflow.counters.as_dict()["engine"]
        per_executor.append(
            {k: v for k, v in eng.items() if k.startswith(_RECOVERY_PREFIXES)}
        )
    assert per_executor[0] == per_executor[1] == per_executor[2]
    assert per_executor[0]  # non-empty: the chaos engaged


def test_seeded_plan_replays_identical_ledger_sequence(workload):
    """Running the same chaotic workflow twice produces the identical
    ledger event sequence (modulo wall-clock stamps)."""

    def events():
        sink = MemorySink()
        _run(
            workload, "c-rep", plan=CHAOS, retry=RETRY,
            executor="serial", workers=4, ledger=RunLedger(sink),
        )
        stripped = [dict(e) for e in sink.events]
        for event in stripped:
            event.pop("t_s", None)
            event.pop("duration_s", None)
        return stripped

    first = events()
    second = events()
    assert first == second
    kinds = {e["type"] for e in first}
    assert "worker_lost" in kinds
    assert "output_invalidated" in kinds
