"""Wider query shapes: 4- and 5-slot chains, stars and cycles, all
algorithms vs the oracle on one shared workload."""

import pytest

from repro.data.synthetic import SyntheticSpec, generate_relations
from repro.geometry.rectangle import Rect
from repro.grid.partitioning import GridPartitioning
from repro.joins.reference import brute_force_join
from repro.joins.registry import make_algorithm
from repro.query.predicates import Overlap, Range
from repro.query.query import Query, Triple

GRID = GridPartitioning(Rect.from_corners(0, 0, 700, 700), 4, 4)
NAMES = ["R1", "R2", "R3", "R4", "R5"]


@pytest.fixture(scope="module")
def datasets():
    spec = SyntheticSpec(
        n=110, x_range=(0, 700), y_range=(0, 700),
        l_range=(0, 90), b_range=(0, 90), seed=97,
    )
    return generate_relations(spec, NAMES)


QUERIES = {
    "chain4-overlap": Query.chain(NAMES[:4], Overlap()),
    "chain5-overlap": Query.chain(NAMES, Overlap()),
    "chain4-hybrid": Query.chain(
        NAMES[:4], [Overlap(), Range(40.0), Overlap()]
    ),
    "star4": Query.star("R1", ["R2", "R3", "R4"], Overlap()),
    "square-cycle": Query([
        Triple(Overlap(), "R1", "R2"),
        Triple(Overlap(), "R2", "R3"),
        Triple(Overlap(), "R3", "R4"),
        Triple(Overlap(), "R4", "R1"),
    ]),
    "diamond": Query([
        Triple(Overlap(), "R1", "R2"),
        Triple(Overlap(), "R1", "R3"),
        Triple(Range(60.0), "R2", "R4"),
        Triple(Range(60.0), "R3", "R4"),
    ]),
}


@pytest.mark.parametrize("query_name", sorted(QUERIES))
@pytest.mark.parametrize("algo", ["cascade", "all-rep", "c-rep", "c-rep-l"])
def test_wide_queries_match_oracle(datasets, query_name, algo):
    query = QUERIES[query_name]
    used = {query.dataset_of(s) for s in query.slots}
    ds = {k: v for k, v in datasets.items() if k in used}
    expected = brute_force_join(query, ds)
    d_max = Rect(0, 0, 90, 90).diagonal
    algorithm = make_algorithm(algo, query=query, d_max=d_max)
    assert algorithm.run(query, ds, GRID).tuples == expected


def test_four_way_crepl_bounds_scale_with_position(datasets):
    # End slots of a 4-chain replicate twice as far as middles (§7.9).
    from repro.joins.limits import ReplicationLimits

    query = QUERIES["chain4-overlap"]
    limits = ReplicationLimits.from_query(query, 10.0)
    assert limits.bound_for("R1") == 2 * limits.bound_for("R2")
