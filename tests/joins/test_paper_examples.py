"""The paper's worked examples, reconstructed with exact coordinates.

* Figure 3 (Section 6): the All-Replicate / dedup-rule example on an
  8x4 grid — which reducers receive the full tuple and which one owns it.
* Figure 5 (Section 7.7): the Controlled-Replicate walk-through on a 2x2
  grid — which rectangles each reducer marks, where each output tuple is
  computed, and the final 4-tuple output.

Paper cells are numbered 1..k row-major; ids here are 0-based.
"""

import pytest

from repro.geometry.rectangle import Rect
from repro.grid.partitioning import GridPartitioning
from repro.joins.all_replicate import AllReplicateJoin
from repro.joins.cascade import CascadeJoin
from repro.joins.controlled import ControlledReplicateJoin
from repro.joins.dedup import tuple_owner
from repro.joins.limits import ReplicationLimits
from repro.joins.marking import MarkingEngine
from repro.joins.reference import brute_force_join
from repro.query.predicates import Overlap
from repro.query.query import Query

Q1 = Query.chain(["R1", "R2", "R3", "R4"], Overlap())


# ----------------------------------------------------------------------
# Figure 3: 8 columns x 4 rows over [0,800] x [0,400]
# ----------------------------------------------------------------------
class TestFigure3:
    grid = GridPartitioning(Rect.from_corners(0, 0, 800, 400), rows=4, cols=8)
    u1 = Rect(110, 190, 30, 30)  # paper cell 18 only
    v1 = Rect(120, 250, 20, 100)  # cells 10 and 18
    w1 = Rect(130, 350, 120, 100)  # cells 2, 3, 10, 11
    x1 = Rect(220, 330, 20, 100)  # cells 3 and 11

    def paper_cells(self, rect) -> set[int]:
        return {c.cell_id + 1 for c in self.grid.cells_overlapping(rect)}

    def test_split_cells_match_paper(self):
        assert self.paper_cells(self.u1) == {18}
        assert self.paper_cells(self.v1) == {10, 18}
        assert self.paper_cells(self.w1) == {2, 3, 10, 11}
        assert self.paper_cells(self.x1) == {3, 11}

    def test_tuple_satisfies_q1(self):
        assert self.u1.intersects(self.v1)
        assert self.v1.intersects(self.w1)
        assert self.w1.intersects(self.x1)

    def test_f1_common_reducers_match_paper(self):
        # Paper: reducers 19-24 and 27-32 receive all four rectangles.
        def f1_cells(rect):
            anchor = self.grid.cell_of(rect)
            return {c.cell_id + 1 for c in self.grid.fourth_quadrant(anchor)}

        common = (
            f1_cells(self.u1)
            & f1_cells(self.v1)
            & f1_cells(self.w1)
            & f1_cells(self.x1)
        )
        assert common == set(range(19, 25)) | set(range(27, 33))

    def test_dedup_owner_is_cell_19(self):
        # u_r = x1 (largest start x), u_l = u1 (smallest start y); the
        # cell containing (x1.x, u1.y) is paper cell 19.
        owner = tuple_owner([self.u1, self.v1, self.w1, self.x1], self.grid)
        assert owner + 1 == 19

    def test_all_replicate_end_to_end(self):
        datasets = {
            "R1": [(0, self.u1)],
            "R2": [(0, self.v1)],
            "R3": [(0, self.w1)],
            "R4": [(0, self.x1)],
        }
        result = AllReplicateJoin().run(Q1, datasets, self.grid)
        assert result.tuples == {(0, 0, 0, 0)}


# ----------------------------------------------------------------------
# Figure 5: 2x2 grid over [0,100]^2; cells c1..c4 are ids 0..3
# ----------------------------------------------------------------------
FIG5 = {
    "R1": [(1, Rect(5, 95, 4, 4)),      # u1: inside c1, isolated
           (2, Rect(30, 62, 8, 6)),     # u2: inside c1, overlaps v3
           (3, Rect(33, 45, 5, 5))],    # u3: inside c3, overlaps v3
    "R2": [(1, Rect(5, 80, 4, 4)),      # v1: inside c1, isolated
           (2, Rect(42, 62, 4, 3)),     # v2: inside c1, overlaps w1 only
           (3, Rect(35, 58, 8, 20)),    # v3: starts c1, crosses into c3
           (4, Rect(44, 90, 10, 5))],   # v4: starts c1, crosses into c2
    "R3": [(1, Rect(40, 60, 20, 20)),   # w1: spans all four cells
           (2, Rect(20, 75, 5, 5))],    # w2: inside c1, isolated
    "R4": [(1, Rect(55, 58, 6, 6)),     # x1: inside c2, overlaps w1
           (2, Rect(42, 56, 4, 4))],    # x2: inside c1, overlaps w1
}

EXPECTED_OUTPUT = {(2, 3, 1, 1), (2, 3, 1, 2), (3, 3, 1, 1), (3, 3, 1, 2)}


@pytest.fixture(scope="module")
def grid2() -> GridPartitioning:
    return GridPartitioning(Rect.from_corners(0, 0, 100, 100), 2, 2)


def received_at(grid, cell_id):
    out = {}
    for dataset, rects in FIG5.items():
        bag = [
            (rid, r)
            for rid, r in rects
            if grid.cell_by_id(cell_id) in grid.cells_overlapping(r)
        ]
        if bag:
            out[dataset] = bag
    return out


class TestFigure5Geometry:
    def test_expected_output_via_oracle(self, grid2):
        assert brute_force_join(Q1, FIG5) == EXPECTED_OUTPUT

    def test_start_cells(self, grid2):
        # Everything except u3 (c3) and x1 (c2) starts in c1.
        for dataset, rects in FIG5.items():
            for rid, r in rects:
                start = grid2.cell_of(r).cell_id
                if (dataset, rid) == ("R1", 3):
                    assert start == 2  # u3 in c3
                elif (dataset, rid) == ("R4", 1):
                    assert start == 1  # x1 in c2
                else:
                    assert start == 0

    def test_w1_spans_all_cells(self, grid2):
        w1 = FIG5["R3"][0][1]
        assert len(grid2.cells_overlapping(w1)) == 4


class TestFigure5Marking:
    def test_c1_marks_paper_set(self, grid2):
        # Paper: uS_c1 = {u2, v3, v4, w1, x2}.
        engine = MarkingEngine(Q1, grid2)
        decision = engine.select_marked(grid2.cell_by_id(0), received_at(grid2, 0))
        assert decision.marked == {
            ("R1", 2),
            ("R2", 3),
            ("R2", 4),
            ("R3", 1),
            ("R4", 2),
        }

    def test_c3_marks_only_u3(self, grid2):
        # Paper: (u3, v3) qualifies at c3 but only u3 starts there.
        engine = MarkingEngine(Q1, grid2)
        decision = engine.select_marked(grid2.cell_by_id(2), received_at(grid2, 2))
        assert decision.marked == {("R1", 3)}

    def test_output_tuples_computed_at_paper_cells(self, grid2):
        # Paper §7.7: the four tuples are computed by reducers c2, c1,
        # c4, c3 respectively.
        by_rid = {
            ds: dict(rects) for ds, rects in FIG5.items()
        }
        owners = {
            tuple_owner(
                [by_rid["R1"][t[0]], by_rid["R2"][t[1]], by_rid["R3"][t[2]],
                 by_rid["R4"][t[3]]],
                grid2,
            )
            for t in sorted(EXPECTED_OUTPUT)
        }
        expectation = {
            (2, 3, 1, 1): 1,  # c2
            (2, 3, 1, 2): 0,  # c1
            (3, 3, 1, 1): 3,  # c4
            (3, 3, 1, 2): 2,  # c3
        }
        for t, cell in expectation.items():
            assert (
                tuple_owner(
                    [by_rid["R1"][t[0]], by_rid["R2"][t[1]],
                     by_rid["R3"][t[2]], by_rid["R4"][t[3]]],
                    grid2,
                )
                == cell
            )
        assert owners == {0, 1, 2, 3}


class TestFigure5EndToEnd:
    @pytest.mark.parametrize(
        "algorithm",
        [
            CascadeJoin(),
            AllReplicateJoin(),
            ControlledReplicateJoin(),
            ControlledReplicateJoin(
                limits=ReplicationLimits.from_query(
                    Q1, Rect(0, 0, 20, 20).diagonal
                )
            ),
        ],
        ids=["cascade", "all-rep", "c-rep", "c-rep-l"],
    )
    def test_output(self, grid2, algorithm):
        result = algorithm.run(Q1, FIG5, grid2)
        assert result.tuples == EXPECTED_OUTPUT

    def test_crep_marks_exactly_paper_rectangles(self, grid2):
        result = ControlledReplicateJoin().run(Q1, FIG5, grid2)
        # u2, v3, v4, w1, x2 at c1; u3 at c3; x1 at c2 (the pair (w1, x1)
        # qualifies there) = 7 marked rectangles in total.
        assert result.stats.rectangles_marked == 7
