"""Unit tests for the 2-way Cascade plan and execution details."""

import pytest

from repro.data.synthetic import SyntheticSpec, generate_relations
from repro.geometry.rectangle import Rect
from repro.grid.partitioning import GridPartitioning
from repro.joins.cascade import CascadeJoin, _build_plan
from repro.joins.reference import brute_force_join
from repro.query.predicates import Overlap, Range
from repro.query.query import Query, Triple

GRID = GridPartitioning(Rect.from_corners(0, 0, 400, 400), 4, 4)


class TestPlan:
    def test_chain_plan(self):
        q = Query.chain(["R1", "R2", "R3"], Overlap())
        first, steps = _build_plan(q)
        assert len(steps) == q.num_slots - 1
        assert steps[-1].is_final
        assert not steps[0].is_final if len(steps) > 1 else True

    def test_each_step_introduces_new_slot(self):
        q = Query.chain(["R1", "R2", "R3", "R4"], Overlap())
        first, steps = _build_plan(q)
        introduced = [first] + [s.new_slot for s in steps]
        assert sorted(introduced) == sorted(q.slots)

    def test_cycle_edge_becomes_check(self):
        q = Query([
            Triple(Overlap(), "A", "B"),
            Triple(Overlap(), "B", "C"),
            Triple(Overlap(), "A", "C"),
        ])
        __, steps = _build_plan(q)
        assert len(steps) == 2
        # the closing edge of the triangle is checked, not a new job
        assert sum(len(s.checks) for s in steps) == 1

    def test_self_join_distinctness_recorded(self):
        q = Query.self_chain("R", 3, Overlap())
        __, steps = _build_plan(q)
        assert len(steps[0].same_dataset) == 1
        assert len(steps[1].same_dataset) == 2


class TestExecution:
    @pytest.fixture(scope="class")
    def datasets(self):
        spec = SyntheticSpec(
            n=150, x_range=(0, 400), y_range=(0, 400),
            l_range=(0, 60), b_range=(0, 60), seed=31,
        )
        return generate_relations(spec, ["R1", "R2", "R3", "R4"])

    def test_four_way_chain(self, datasets):
        q = Query.chain(["R1", "R2", "R3", "R4"], Overlap())
        result = CascadeJoin().run(q, datasets, GRID)
        assert result.tuples == brute_force_join(q, datasets)
        assert len(result.workflow.job_results) == 3

    def test_four_way_hybrid(self, datasets):
        q = Query.chain(
            ["R1", "R2", "R3", "R4"], [Overlap(), Range(30.0), Range(50.0)]
        )
        result = CascadeJoin().run(q, datasets, GRID)
        assert result.tuples == brute_force_join(q, datasets)

    def test_star_query(self, datasets):
        q = Query.star("R1", ["R2", "R3", "R4"], Overlap())
        result = CascadeJoin().run(q, datasets, GRID)
        assert result.tuples == brute_force_join(q, datasets)

    def test_intermediate_results_on_dfs(self, datasets):
        q = Query.chain(["R1", "R2", "R3"], Overlap())
        from repro.mapreduce.engine import Cluster

        cluster = Cluster()
        CascadeJoin().run(q, datasets, GRID, cluster)
        # step 0 output persisted, final output separate
        assert cluster.dfs.exists("two-way-cascade/step-0")
        assert cluster.dfs.exists("two-way-cascade/output")

    def test_empty_intermediate_result(self):
        # Nothing overlaps: the cascade must terminate with empty output
        # without blowing up on empty intermediate files.
        datasets = {
            "R1": [(0, Rect(0, 400, 5, 5))],
            "R2": [(0, Rect(200, 200, 5, 5))],
            "R3": [(0, Rect(390, 10, 5, 5))],
        }
        q = Query.chain(["R1", "R2", "R3"], Overlap())
        result = CascadeJoin().run(q, datasets, GRID)
        assert result.tuples == set()


class TestSweepKernel:
    """CascadeJoin(index_kind="sweep") swaps the reducer kernel."""

    @pytest.fixture(scope="class")
    def datasets(self):
        spec = SyntheticSpec(
            n=160, x_range=(0, 400), y_range=(0, 400),
            l_range=(0, 60), b_range=(0, 60), seed=71,
        )
        return generate_relations(spec, ["R1", "R2", "R3"])

    @pytest.mark.parametrize(
        "query",
        [
            Query.chain(["R1", "R2", "R3"], Overlap()),
            Query.chain(["R1", "R2", "R3"], Range(30.0)),
            Query.chain(["R1", "R2", "R3"], [Overlap(), Range(45.0)]),
        ],
        ids=["overlap", "range", "hybrid"],
    )
    def test_matches_index_kernel(self, datasets, query):
        expected = brute_force_join(query, datasets)
        indexed = CascadeJoin(index_kind="grid").run(query, datasets, GRID)
        swept = CascadeJoin(index_kind="sweep").run(query, datasets, GRID)
        assert indexed.tuples == expected
        assert swept.tuples == expected

    def test_self_join_with_sweep(self):
        q = Query.self_chain("R", 3, Overlap())
        rects = [
            (0, Rect(10, 390, 30, 30)),
            (1, Rect(25, 380, 30, 30)),
            (2, Rect(40, 370, 30, 30)),
        ]
        result = CascadeJoin(index_kind="sweep").run(q, {"R": rects}, GRID)
        assert result.tuples == brute_force_join(q, {"R": rects})
