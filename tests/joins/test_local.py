"""Unit tests for the local backtracking multi-way join."""

import pytest

from repro.data.synthetic import SyntheticSpec, generate_relations
from repro.errors import JoinError
from repro.geometry.rectangle import Rect
from repro.joins.local import LocalJoiner
from repro.joins.reference import brute_force_join
from repro.query.predicates import Overlap, Range
from repro.query.query import Query, Triple


def as_tuples(assignments, slots):
    return {tuple(a[s][0] for s in slots) for a in assignments}


class TestChainOverlap:
    def test_simple_chain(self, chain3_query):
        bags = {
            "R1": [(0, Rect(0, 10, 5, 5))],
            "R2": [(0, Rect(4, 9, 5, 5))],
            "R3": [(0, Rect(8, 8, 5, 5)), (1, Rect(50, 50, 1, 1))],
        }
        joiner = LocalJoiner(chain3_query)
        assignments, checks = joiner.enumerate(bags)
        assert as_tuples(assignments, chain3_query.slots) == {(0, 0, 0)}
        assert checks > 0

    def test_chain_does_not_require_end_overlap(self, chain3_query):
        # R1 and R3 need not overlap each other.
        bags = {
            "R1": [(0, Rect(0, 10, 3, 3))],
            "R2": [(0, Rect(2, 9, 10, 3))],
            "R3": [(0, Rect(11, 8, 3, 3))],
        }
        assignments, __ = LocalJoiner(chain3_query).enumerate(bags)
        assert len(assignments) == 1

    def test_empty_bag_short_circuits(self, chain3_query):
        bags = {"R1": [(0, Rect(0, 9, 1, 1))], "R2": [], "R3": []}
        assignments, checks = LocalJoiner(chain3_query).enumerate(bags)
        assert assignments == []
        assert checks == 0

    def test_missing_bag_rejected(self, chain3_query):
        with pytest.raises(JoinError):
            LocalJoiner(chain3_query).enumerate({"R1": []})


class TestRangeAndHybrid:
    def test_range_chain(self, range3_query):
        bags = {
            "R1": [(0, Rect(0, 10, 2, 2))],
            "R2": [(0, Rect(8, 10, 2, 2))],  # 6 from R1
            "R3": [(0, Rect(30, 10, 2, 2))],  # 20 from R2: too far
        }
        assignments, __ = LocalJoiner(range3_query).enumerate(bags)
        assert assignments == []
        bags["R3"] = [(0, Rect(15, 10, 2, 2))]  # 5 from R2
        assignments, __ = LocalJoiner(range3_query).enumerate(bags)
        assert len(assignments) == 1

    def test_hybrid(self):
        q = Query.chain(["A", "B", "C"], [Overlap(), Range(10)])
        bags = {
            "A": [(0, Rect(0, 10, 4, 4))],
            "B": [(0, Rect(3, 9, 4, 4))],
            "C": [(0, Rect(12, 9, 2, 2))],
        }
        assignments, __ = LocalJoiner(q).enumerate(bags)
        assert len(assignments) == 1


class TestSelfJoin:
    def test_distinct_rids_required(self):
        q = Query.self_chain("R", 2, Overlap())
        bags = {slot: [(0, Rect(0, 10, 5, 5))] for slot in q.slots}
        assignments, __ = LocalJoiner(q).enumerate(bags)
        assert assignments == []  # the only candidate pairs rid 0 with itself

    def test_symmetric_assignments_both_reported(self):
        q = Query.self_chain("R", 2, Overlap())
        rects = [(0, Rect(0, 10, 5, 5)), (1, Rect(3, 9, 5, 5))]
        bags = {slot: rects for slot in q.slots}
        assignments, __ = LocalJoiner(q).enumerate(bags)
        assert as_tuples(assignments, q.slots) == {(0, 1), (1, 0)}

    def test_triple_self_join(self):
        q = Query.self_chain("R", 3, Overlap())
        rects = [
            (0, Rect(0, 10, 4, 4)),
            (1, Rect(3, 9, 4, 4)),
            (2, Rect(6, 8, 4, 4)),
        ]
        bags = {slot: rects for slot in q.slots}
        assignments, __ = LocalJoiner(q).enumerate(bags)
        got = as_tuples(assignments, q.slots)
        # rid 0 overlaps 1, 1 overlaps 2; 0 and 2 do not overlap.
        assert (0, 1, 2) in got
        assert (2, 1, 0) in got
        assert (0, 2, 1) not in got
        # middle rectangle must overlap both ends
        assert all(t[1] == 1 for t in got)


class TestCycleQuery:
    def test_triangle(self):
        q = Query([
            Triple(Overlap(), "A", "B"),
            Triple(Overlap(), "B", "C"),
            Triple(Overlap(), "A", "C"),
        ])
        bags = {
            "A": [(0, Rect(0, 10, 6, 6))],
            "B": [(0, Rect(4, 9, 6, 6))],
            # overlaps B but not A:
            "C": [(0, Rect(8, 8, 6, 6))],
        }
        assignments, __ = LocalJoiner(q).enumerate(bags)
        assert assignments == []
        bags["C"] = [(0, Rect(5, 8, 6, 6))]  # overlaps both
        assignments, __ = LocalJoiner(q).enumerate(bags)
        assert len(assignments) == 1


class TestAgainstBruteForce:
    @pytest.mark.parametrize("index_kind", ["grid", "rtree", "scan"])
    def test_random_workload_matches_oracle(self, index_kind):
        spec = SyntheticSpec(
            n=120,
            x_range=(0, 500),
            y_range=(0, 500),
            l_range=(0, 60),
            b_range=(0, 60),
            seed=77,
        )
        datasets = generate_relations(spec, ["R1", "R2", "R3"])
        for q in [
            Query.chain(["R1", "R2", "R3"], Overlap()),
            Query.chain(["R1", "R2", "R3"], Range(25.0)),
            Query.chain(["R1", "R2", "R3"], [Overlap(), Range(40.0)]),
        ]:
            bags = {s: datasets[q.dataset_of(s)] for s in q.slots}
            assignments, __ = LocalJoiner(q, index_kind).enumerate(bags)
            assert as_tuples(assignments, q.slots) == brute_force_join(
                q, datasets
            )

    def test_self_join_matches_oracle(self):
        spec = SyntheticSpec(
            n=80, x_range=(0, 300), y_range=(0, 300),
            l_range=(0, 50), b_range=(0, 50), seed=5,
        )
        datasets = {"R": generate_relations(spec, ["R"])["R"]}
        q = Query.self_chain("R", 3, Overlap())
        bags = {s: datasets["R"] for s in q.slots}
        assignments, __ = LocalJoiner(q).enumerate(bags)
        assert as_tuples(assignments, q.slots) == brute_force_join(q, datasets)
