"""The central property-based correctness test: on arbitrary random
workloads, grids and query shapes, every map-reduce algorithm must
produce exactly the brute-force join result.

This is the test that would catch any violation of the
Controlled-Replicate conditions, the replication-limit bounds, or the
duplicate-avoidance reachability argument.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data.transforms import max_diagonal
from repro.geometry.rectangle import Rect
from repro.grid.partitioning import GridPartitioning
from repro.joins.all_replicate import AllReplicateJoin
from repro.joins.cascade import CascadeJoin
from repro.joins.controlled import ControlledReplicateJoin
from repro.joins.limits import ReplicationLimits
from repro.joins.reference import brute_force_join
from repro.query.predicates import Contains, Overlap, Range
from repro.query.query import Query, Triple

SPACE = Rect.from_corners(0.0, 0.0, 100.0, 100.0)

# Rectangle sizes comparable to cell sizes maximise boundary crossings,
# which is where the marking conditions and dedup rules earn their keep.
coord = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
side = st.floats(min_value=0.0, max_value=45.0, allow_nan=False)


@st.composite
def rect_in_space(draw) -> Rect:
    x = draw(coord)
    y = draw(coord)
    l = min(draw(side), 100.0 - x)
    b = min(draw(side), y)
    return Rect(x, y, l, b)


def bag(min_size=0, max_size=7):
    return st.lists(rect_in_space(), min_size=min_size, max_size=max_size).map(
        lambda rs: list(enumerate(rs))
    )


@st.composite
def three_datasets(draw):
    return {
        "R1": draw(bag()),
        "R2": draw(bag()),
        "R3": draw(bag()),
    }


@st.composite
def grids(draw) -> GridPartitioning:
    rows = draw(st.integers(min_value=1, max_value=5))
    cols = draw(st.integers(min_value=1, max_value=5))
    return GridPartitioning(SPACE, rows, cols)


@st.composite
def queries(draw) -> Query:
    kind = draw(st.sampled_from(["chain", "star", "triangle"]))
    def pred():
        choice = draw(st.sampled_from(["overlap", "range", "contains"]))
        if choice == "overlap":
            return Overlap()
        if choice == "contains":
            return Contains()
        return Range(draw(st.floats(min_value=0.0, max_value=30.0)))

    if kind == "chain":
        return Query.chain(["R1", "R2", "R3"], [pred(), pred()])
    if kind == "star":
        return Query.star("R2", ["R1", "R3"], [pred(), pred()])
    return Query([
        Triple(pred(), "R1", "R2"),
        Triple(pred(), "R2", "R3"),
        Triple(pred(), "R1", "R3"),
    ])


def run_all(query, datasets, grid):
    d_max = max(max_diagonal(datasets), 1e-9)
    algorithms = {
        "cascade": CascadeJoin(),
        "all-rep": AllReplicateJoin(),
        "c-rep": ControlledReplicateJoin(),
        "c-rep-l": ControlledReplicateJoin(
            limits=ReplicationLimits.from_query(query, d_max)
        ),
    }
    return {name: a.run(query, datasets, grid).tuples for name, a in algorithms.items()}


COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@settings(max_examples=40, **COMMON)
@given(three_datasets(), grids(), queries())
def test_all_algorithms_match_oracle(datasets, grid, query):
    expected = brute_force_join(query, datasets)
    for name, tuples in run_all(query, datasets, grid).items():
        assert tuples == expected, f"{name} diverged from brute force"


@settings(max_examples=25, **COMMON)
@given(bag(max_size=8), grids(), st.floats(min_value=0, max_value=25))
def test_self_join_matches_oracle(rects, grid, d):
    query = Query.self_chain("R", 3, Range(d) if d > 0 else Overlap())
    datasets = {"R": rects}
    expected = brute_force_join(query, datasets)
    for name, tuples in run_all(query, datasets, grid).items():
        assert tuples == expected, f"{name} diverged from brute force"


@settings(max_examples=25, **COMMON)
@given(three_datasets(), grids(), queries())
def test_crepl_limit_metric_paper_vs_safe(datasets, grid, query):
    # The Chebyshev (safe) limit must never lose tuples; the literal
    # Euclidean limit is also run to measure (not assert) parity — it
    # may under-replicate only in contrived corner geometries, so we
    # assert it stays a SUBSET of the truth rather than equal.
    expected = brute_force_join(query, datasets)
    d_max = max(max_diagonal(datasets), 1e-9)
    safe = ControlledReplicateJoin(
        limits=ReplicationLimits.from_query(query, d_max, metric="chebyshev")
    ).run(query, datasets, grid)
    assert safe.tuples == expected
    literal = ControlledReplicateJoin(
        limits=ReplicationLimits.from_query(query, d_max, metric="euclidean")
    ).run(query, datasets, grid)
    assert literal.tuples <= expected
