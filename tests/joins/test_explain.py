"""Tests for the EXPLAIN plan inspector."""

import pytest

from repro.data.synthetic import SyntheticSpec, generate_relations
from repro.geometry.rectangle import Rect
from repro.grid.partitioning import GridPartitioning
from repro.joins.explain import explain
from repro.query.predicates import Overlap, Range
from repro.query.query import Query


@pytest.fixture(scope="module")
def setting():
    spec = SyntheticSpec(
        n=300, x_range=(0, 2000), y_range=(0, 2000),
        l_range=(0, 60), b_range=(0, 60), seed=5,
    )
    datasets = generate_relations(spec, ["R1", "R2", "R3"])
    grid = GridPartitioning.square(spec.space, 16)
    return datasets, grid


class TestExplain:
    def test_sections_present(self, setting):
        datasets, grid = setting
        query = Query.chain(["R1", "R2", "R3"], [Overlap(), Range(50.0)])
        text = explain(query, datasets, grid)
        for fragment in (
            "query: R1 Ov R2 and R2 Ra(50) R3",
            "join graph:",
            "2-way Cascade plan",
            "All-Replicate:",
            "Controlled-Replicate",
            "replication bounds",
        ):
            assert fragment in text

    def test_bounds_reflect_query_structure(self, setting):
        datasets, grid = setting
        query = Query.chain(["R1", "R2", "R3"], Overlap())
        text = explain(query, datasets, grid)
        # Chain middles replicate to 0 for an overlap chain of 3.
        assert "slot R2: 0.0" in text

    def test_allrep_factor_matches_grid(self, setting):
        datasets, grid = setting
        query = Query.chain(["R1", "R2", "R3"], Overlap())
        text = explain(query, datasets, grid)
        # mean |C4| of a 4x4 grid: ((4+1)/2)^2 = 6.25
        assert "x 6.2" in text

    def test_self_join_slots_listed(self, setting):
        __, grid = setting
        query = Query.self_chain("R", 3, Overlap())
        datasets = {"R": [(0, Rect(100, 1900, 10, 10)), (1, Rect(105, 1895, 10, 10))]}
        text = explain(query, datasets, grid)
        assert "at slots [R#1, R#2, R#3]" in text

    def test_empty_dataset_handled(self, setting):
        __, grid = setting
        query = Query.chain(["A", "B"], Overlap())
        datasets = {"A": [], "B": [(0, Rect(5, 1995, 1, 1))]}
        text = explain(query, datasets, grid)
        assert "A: 0 rectangles" in text
