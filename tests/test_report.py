"""Tests for the paper-vs-measured reporting module."""

import pytest

from repro.experiments import table6, table9
from repro.experiments.common import (
    AlgoMetrics,
    ExperimentResult,
    ExperimentRow,
)
from repro.report import paper_comparison


@pytest.fixture(scope="module")
def tiny_result():
    return table9.run(scale=0.05)


class TestPaperComparison:
    def test_contains_table_title_and_rows(self, tiny_result):
        text = paper_comparison(table9, tiny_result)
        assert "Table 9" in text
        for row in tiny_result.rows:
            assert row.label.split("=")[-1] in text

    def test_contains_paper_numbers(self, tiny_result):
        text = paper_comparison(table9, tiny_result)
        # Table 9's paper times (minutes) appear in the table.
        assert "28" in text and "63" in text

    def test_growth_section(self, tiny_result):
        text = paper_comparison(table9, tiny_result)
        assert "Growth along the sweep" in text
        assert "1.0x" in text

    def test_replication_ratio_section(self, tiny_result):
        text = paper_comparison(table9, tiny_result)
        assert "C-Rep-L / C-Rep" in text

    def test_consistency_verdict(self, tiny_result):
        text = paper_comparison(table9, tiny_result)
        assert "identical output tuples" in text
        assert "**yes**" in text

    def test_inconsistent_flagged(self):
        m = AlgoMetrics(10.0, 1, 1, 1, 1, 0.1)
        result = ExperimentResult(
            table="Table 6",
            title="t",
            query="q",
            parameters="p",
            rows=[
                ExperimentRow(
                    label="d=100",
                    metrics={"c-rep": m, "c-rep-l": m},
                    consistent=False,
                )
            ],
        )
        text = paper_comparison(table6, result)
        assert "INVESTIGATE" in text

    def test_aborted_paper_runs_marked(self):
        # Table 2's All-Rep rows beyond 2m are ">03:00" (None).
        from repro.experiments import table2

        m = AlgoMetrics(10.0, 1, 1, 1, 1, 0.1)
        rows = [
            ExperimentRow(label=f"nI={i}", metrics={"all-rep": m})
            for i in range(5)
        ]
        result = ExperimentResult(
            table="Table 2", title="t", query="q", parameters="p", rows=rows
        )
        text = paper_comparison(table2, result)
        assert "aborted" in text

    def test_winner_columns(self, tiny_result):
        text = paper_comparison(table9, tiny_result)
        assert "winner (paper)" in text
        assert "winner (repro)" in text


class TestInternals:
    def test_normalised(self):
        from repro.report import _normalised

        assert _normalised([2.0, 4.0, 8.0]) == [1.0, 2.0, 4.0]
        assert _normalised([]) == []
        assert _normalised([0.0, 5.0]) == [0.0, 0.0]

    def test_winner_ties(self):
        from repro.report import _winner

        assert _winner({"a": 10.0, "b": 10.2}) == "tie"
        assert _winner({"a": 10.0, "b": 20.0}) == "a"
        assert _winner({"a": None}) == "-"
        assert _winner({"a": None, "b": 3.0}) == "b"
