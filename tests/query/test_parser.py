"""Tests for the textual query parser."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.query.parser import parse_query
from repro.query.predicates import Contains, Overlap, Range
from repro.query.query import Query, Triple


class TestParsing:
    def test_two_way_overlap(self):
        q = parse_query("R1 Ov R2")
        assert q.triples == (Triple(Overlap(), "R1", "R2"),)

    def test_chain_matches_programmatic(self):
        parsed = parse_query("R1 Ov R2 and R2 Ov R3")
        built = Query.chain(["R1", "R2", "R3"], Overlap())
        assert parsed.triples == built.triples

    def test_range_with_distance(self):
        q = parse_query("A Ra(100) B")
        assert q.triples[0].predicate == Range(100.0)

    def test_range_float_and_scientific(self):
        assert parse_query("A Ra(2.5) B").triples[0].predicate == Range(2.5)
        assert parse_query("A Ra(1e3) B").triples[0].predicate == Range(1000.0)

    def test_contains(self):
        q = parse_query("outer Ct inner")
        assert q.triples[0].predicate == Contains()

    def test_hybrid_query(self):
        q = parse_query("R1 Ov R2 and R2 Ra(200) R3")
        assert str(q) == "R1 Ov R2 and R2 Ra(200) R3"

    def test_case_insensitive_keywords(self):
        q = parse_query("a OV b AND b ra(5) c")
        assert q.triples[0].predicate == Overlap()
        assert q.triples[1].predicate == Range(5.0)

    def test_whitespace_tolerant(self):
        q = parse_query("  a   Ra( 7 )   b  ")
        assert q.triples[0].predicate == Range(7.0)

    def test_self_join_datasets(self):
        q = parse_query(
            "roads#1 Ov roads#2 and roads#2 Ov roads#3",
            datasets={f"roads#{i}": "roads" for i in (1, 2, 3)},
        )
        assert q.dataset_keys == ("roads",)

    def test_roundtrip_via_str(self):
        q = Query.chain(["A", "B", "C"], [Overlap(), Range(12.5)])
        assert parse_query(str(q)).triples == q.triples


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "   ",
            "R1",
            "R1 Ov",
            "R1 Near R2",
            "R1 Ra R2",
            "R1 Ov(3) R2",
            "R1 Ct(1) R2",
            "R1 Ra() R2",
            "R1 Ov R2 and",
            "R1 Ov R1",  # self-loop triple
            "R1 Ov R2 and R3 Ov R4",  # disconnected
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(QueryError):
            parse_query(bad)


@given(
    st.lists(
        st.sampled_from(["Ov", "Ct", "Ra(3)", "Ra(120.5)"]),
        min_size=1,
        max_size=4,
    )
)
def test_chain_roundtrip_property(preds):
    slots = [f"S{i}" for i in range(len(preds) + 1)]
    text = " and ".join(
        f"{slots[i]} {p} {slots[i + 1]}" for i, p in enumerate(preds)
    )
    q = parse_query(text)
    assert q.num_slots == len(slots)
    assert parse_query(str(q)).triples == q.triples
