"""Unit tests for the join-graph utilities, including the paper's
C-Rep-L bound examples (Sections 7.9 and 8)."""

import pytest

from repro.errors import QueryError
from repro.query.graph import JoinGraph, crepl_bounds
from repro.query.predicates import Overlap, Range
from repro.query.query import Query, Triple


class TestOrders:
    def test_connected_order_covers_all(self):
        q = Query.chain(["R1", "R2", "R3", "R4"], Overlap())
        order = JoinGraph(q).connected_order()
        assert sorted(order) == sorted(q.slots)
        # every slot after the first touches an earlier one
        for i, slot in enumerate(order[1:], start=1):
            assert any(
                t.other(slot) in order[:i] for t in q.triples_touching(slot)
            )

    def test_connected_order_start(self):
        q = Query.chain(["R1", "R2", "R3"], Overlap())
        order = JoinGraph(q).connected_order("R3")
        assert order[0] == "R3"

    def test_connected_order_unknown_start(self):
        q = Query.chain(["R1", "R2"], Overlap())
        with pytest.raises(QueryError):
            JoinGraph(q).connected_order("R7")

    def test_spanning_triples_chain(self):
        q = Query.chain(["R1", "R2", "R3"], Overlap())
        triples = JoinGraph(q).spanning_triples()
        assert len(triples) == 2

    def test_spanning_triples_cycle(self):
        q = Query([
            Triple(Overlap(), "A", "B"),
            Triple(Overlap(), "B", "C"),
            Triple(Overlap(), "A", "C"),
        ])
        triples = JoinGraph(q).spanning_triples()
        assert len(triples) == 3  # two expanding + one filter


class TestConnectedSubsets:
    def test_chain_center(self):
        q = Query.chain(["R1", "R2", "R3"], Overlap())
        subsets = JoinGraph(q).connected_subsets_containing("R2")
        as_sets = set(subsets)
        assert frozenset({"R2"}) in as_sets
        assert frozenset({"R1", "R2"}) in as_sets
        assert frozenset({"R2", "R3"}) in as_sets
        # proper subsets only: the full slot set is excluded (C3)
        assert frozenset({"R1", "R2", "R3"}) not in as_sets
        assert len(as_sets) == 3

    def test_chain_end(self):
        q = Query.chain(["R1", "R2", "R3"], Overlap())
        subsets = set(JoinGraph(q).connected_subsets_containing("R1"))
        # {R1}, {R1,R2}; {R1,R3} is disconnected and excluded
        assert subsets == {frozenset({"R1"}), frozenset({"R1", "R2"})}

    def test_sorted_smallest_first(self):
        q = Query.chain(["R1", "R2", "R3", "R4"], Overlap())
        subsets = JoinGraph(q).connected_subsets_containing("R2")
        sizes = [len(s) for s in subsets]
        assert sizes == sorted(sizes)

    def test_outside_and_inside_triples(self):
        q = Query.chain(["R1", "R2", "R3"], Overlap())
        g = JoinGraph(q)
        s = frozenset({"R1", "R2"})
        assert [str(t) for t in g.outside_triples(s)] == ["R2 Ov R3"]
        assert [str(t) for t in g.inside_triples(s)] == ["R1 Ov R2"]


class TestReplicationBounds:
    def test_overlap_chain_paper_example(self):
        # §7.9 / Figure 6: 4-chain overlap query with diagonal bound
        # d_max: ends replicate to 2*d_max, middles to d_max.
        q = Query.chain(["R1", "R2", "R3", "R4"], Overlap())
        bounds = JoinGraph(q).replication_bounds(10.0)
        assert bounds == {"R1": 20.0, "R2": 10.0, "R3": 10.0, "R4": 20.0}

    def test_range_chain_paper_example(self):
        # §8 / Figure 8: 4-chain Ra(d) query: ends (m-2)*dmax + (m-1)*d,
        # middles dmax + 2d.
        q = Query.chain(["R1", "R2", "R3", "R4"], Range(5.0))
        bounds = JoinGraph(q).replication_bounds(10.0)
        assert bounds == {
            "R1": 2 * 10 + 3 * 5,
            "R2": 10 + 2 * 5,
            "R3": 10 + 2 * 5,
            "R4": 2 * 10 + 3 * 5,
        }

    def test_two_way_bounds(self):
        q = Query.chain(["R1", "R2"], Range(7.0))
        bounds = JoinGraph(q).replication_bounds(3.0)
        # direct edge: no interior rectangles, just the range distance
        assert bounds == {"R1": 7.0, "R2": 7.0}

    def test_star_bounds(self):
        q = Query.star("C", ["L1", "L2"], Overlap())
        bounds = JoinGraph(q).replication_bounds(4.0)
        # center to leaf: 0 edges weight, no interior -> 0; leaf to leaf
        # passes through the center: one interior diagonal.
        assert bounds["C"] == 0.0
        assert bounds["L1"] == 4.0

    def test_hybrid_chain(self):
        q = Query.chain(["A", "B", "C"], [Overlap(), Range(6.0)])
        bounds = JoinGraph(q).replication_bounds(2.0)
        # A..C: 0 + diag(B) + 6 = 8; B: max(0, 6) = 6
        assert bounds == {"A": 8.0, "B": 6.0, "C": 8.0}

    def test_per_slot_dmax(self):
        q = Query.chain(["A", "B", "C"], Overlap())
        bounds = JoinGraph(q).replication_bounds({"A": 1.0, "B": 5.0, "C": 2.0})
        # A..C passes through B -> 5; B's neighbors are adjacent -> 0.
        assert bounds == {"A": 5.0, "B": 0.0, "C": 5.0}

    def test_missing_slot_rejected(self):
        q = Query.chain(["A", "B"], Overlap())
        with pytest.raises(QueryError):
            JoinGraph(q).replication_bounds({"A": 1.0})

    def test_negative_dmax_rejected(self):
        q = Query.chain(["A", "B"], Overlap())
        with pytest.raises(QueryError):
            JoinGraph(q).replication_bounds(-2.0)

    def test_shortest_path_chosen_in_cycle(self):
        # Two routes from A to C: direct Ra(100) edge or via B with
        # overlap edges; the cheaper (via B) must win.
        q = Query([
            Triple(Range(100.0), "A", "C"),
            Triple(Overlap(), "A", "B"),
            Triple(Overlap(), "B", "C"),
        ])
        bounds = JoinGraph(q).replication_bounds(3.0)
        assert bounds["A"] == 3.0  # through B: diag(B) only


class TestCreplBoundsWrapper:
    def test_per_dataset_spread(self):
        q = Query.self_chain("roads", 3, Overlap())
        bounds = crepl_bounds(q, 0.0, per_dataset={"roads": 9.0})
        assert bounds["roads#1"] == 9.0
        assert bounds["roads#2"] == 0.0  # center of the chain

    def test_scalar(self):
        q = Query.chain(["A", "B", "C"], Overlap())
        assert crepl_bounds(q, 5.0)["A"] == 5.0
