"""Unit tests for the Overlap / Range predicates (paper Section 1.2)."""

import pytest

from repro.errors import QueryError
from repro.geometry.rectangle import Rect
from repro.query.predicates import Overlap, Range


class TestOverlap:
    def test_holds_on_intersection(self):
        assert Overlap().holds(Rect(0, 10, 5, 5), Rect(3, 9, 5, 5))

    def test_rejects_disjoint(self):
        assert not Overlap().holds(Rect(0, 10, 1, 1), Rect(5, 10, 1, 1))

    def test_distance_zero(self):
        assert Overlap().distance == 0.0
        assert Overlap().is_overlap

    def test_str(self):
        assert str(Overlap()) == "Ov"

    def test_equality(self):
        assert Overlap() == Overlap()


class TestRange:
    def test_holds_within(self):
        assert Range(5).holds(Rect(0, 10, 1, 1), Rect(4, 10, 1, 1))

    def test_closed_at_d(self):
        # dx exactly 5
        assert Range(5).holds(Rect(0, 10, 1, 1), Rect(6, 10, 1, 1))
        assert not Range(4.99).holds(Rect(0, 10, 1, 1), Rect(6, 10, 1, 1))

    def test_symmetric(self):
        a, b = Rect(0, 10, 2, 2), Rect(8, 1, 2, 2)
        assert Range(20).holds(a, b) == Range(20).holds(b, a)

    def test_range_zero_equals_overlap(self):
        # Section 9: Ov is Ra(0).
        pairs = [
            (Rect(0, 10, 5, 5), Rect(3, 9, 5, 5)),
            (Rect(0, 10, 5, 5), Rect(5, 10, 5, 5)),  # touching
            (Rect(0, 10, 1, 1), Rect(9, 10, 1, 1)),  # disjoint
        ]
        for a, b in pairs:
            assert Range(0).holds(a, b) == Overlap().holds(a, b)
        assert Range(0).is_overlap

    def test_positive_d_not_overlap(self):
        assert not Range(3).is_overlap
        assert Range(3).distance == 3

    def test_negative_d_rejected(self):
        with pytest.raises(QueryError):
            Range(-1)

    def test_str(self):
        assert str(Range(2.5)) == "Ra(2.5)"
        assert str(Range(100.0)) == "Ra(100)"
