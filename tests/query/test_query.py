"""Unit tests for the multi-way query model."""

import pytest

from repro.errors import QueryError
from repro.query.predicates import Overlap, Range
from repro.query.query import Query, Triple


class TestTriple:
    def test_other(self):
        t = Triple(Overlap(), "A", "B")
        assert t.other("A") == "B"
        assert t.other("B") == "A"
        with pytest.raises(QueryError):
            t.other("C")

    def test_touches(self):
        t = Triple(Overlap(), "A", "B")
        assert t.touches("A") and t.touches("B")
        assert not t.touches("C")

    def test_self_loop_rejected(self):
        with pytest.raises(QueryError):
            Triple(Overlap(), "A", "A")

    def test_str(self):
        assert str(Triple(Range(7), "A", "B")) == "A Ra(7) B"


class TestQueryConstruction:
    def test_chain(self):
        q = Query.chain(["R1", "R2", "R3"], Overlap())
        assert q.slots == ("R1", "R2", "R3")
        assert len(q.triples) == 2
        assert str(q) == "R1 Ov R2 and R2 Ov R3"

    def test_chain_per_edge_predicates(self):
        q = Query.chain(["R1", "R2", "R3"], [Overlap(), Range(5)])
        assert q.triples[0].predicate == Overlap()
        assert q.triples[1].predicate == Range(5)

    def test_chain_wrong_predicate_count(self):
        with pytest.raises(QueryError):
            Query.chain(["R1", "R2", "R3"], [Overlap()])

    def test_chain_too_short(self):
        with pytest.raises(QueryError):
            Query.chain(["R1"], Overlap())

    def test_star(self):
        q = Query.star("C", ["L1", "L2", "L3"], Overlap())
        assert q.num_slots == 4
        assert all(t.left == "C" for t in q.triples)

    def test_star_empty_rejected(self):
        with pytest.raises(QueryError):
            Query.star("C", [], Overlap())

    def test_self_chain(self):
        q = Query.self_chain("roads", 3, Overlap())
        assert q.num_slots == 3
        assert q.dataset_keys == ("roads",)
        assert q.slots_of_dataset("roads") == q.slots

    def test_triples_as_tuples(self):
        q = Query([(Overlap(), "A", "B")])
        assert q.triples[0] == Triple(Overlap(), "A", "B")

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            Query([])

    def test_disconnected_rejected(self):
        with pytest.raises(QueryError):
            Query([
                Triple(Overlap(), "A", "B"),
                Triple(Overlap(), "C", "D"),
            ])

    def test_unknown_dataset_slot_rejected(self):
        with pytest.raises(QueryError):
            Query([Triple(Overlap(), "A", "B")], datasets={"Z": "data"})


class TestQueryAccessors:
    def test_dataset_of_defaults_to_slot_name(self):
        q = Query.chain(["R1", "R2"], Overlap())
        assert q.dataset_of("R1") == "R1"

    def test_dataset_of_mapping(self):
        q = Query.self_chain("roads", 2, Overlap())
        for slot in q.slots:
            assert q.dataset_of(slot) == "roads"

    def test_dataset_of_unknown_slot(self):
        q = Query.chain(["R1", "R2"], Overlap())
        with pytest.raises(QueryError):
            q.dataset_of("R9")

    def test_triples_touching(self):
        q = Query.chain(["R1", "R2", "R3"], Overlap())
        assert len(q.triples_touching("R2")) == 2
        assert len(q.triples_touching("R1")) == 1

    def test_triples_between(self):
        q = Query.chain(["R1", "R2", "R3"], Overlap())
        assert len(q.triples_between("R1", "R2")) == 1
        assert len(q.triples_between("R1", "R3")) == 0

    def test_query_classification(self):
        ov = Query.chain(["A", "B"], Overlap())
        ra = Query.chain(["A", "B"], Range(5))
        hy = Query.chain(["A", "B", "C"], [Overlap(), Range(5)])
        assert ov.is_overlap_query and not ov.is_range_query
        assert ra.is_range_query and not ra.is_overlap_query
        assert not hy.is_overlap_query and not hy.is_range_query

    def test_max_range_distance(self):
        q = Query.chain(["A", "B", "C"], [Range(5), Range(9)])
        assert q.max_range_distance == 9
        assert Query.chain(["A", "B"], Overlap()).max_range_distance == 0

    def test_as_range_query(self):
        q = Query.chain(["A", "B", "C"], [Overlap(), Range(5)]).as_range_query()
        assert all(isinstance(t.predicate, Range) for t in q.triples)
        assert q.triples[0].predicate.d == 0
        assert q.triples[1].predicate.d == 5

    def test_slots_order_of_first_appearance(self):
        q = Query([
            Triple(Overlap(), "B", "A"),
            Triple(Overlap(), "A", "C"),
        ])
        assert q.slots == ("B", "A", "C")
