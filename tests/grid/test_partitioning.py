"""Unit tests for the grid partitioning (paper Section 4)."""

import math

import pytest

from repro.errors import PartitioningError
from repro.geometry.rectangle import Rect
from repro.grid.partitioning import GridPartitioning


class TestConstruction:
    def test_square(self, unit_space):
        grid = GridPartitioning.square(unit_space, 64)
        assert grid.rows == grid.cols == 8
        assert grid.num_cells == 64

    def test_square_requires_perfect_square(self, unit_space):
        with pytest.raises(PartitioningError):
            GridPartitioning.square(unit_space, 60)

    def test_invalid_dimensions(self, unit_space):
        with pytest.raises(PartitioningError):
            GridPartitioning(unit_space, rows=0, cols=4)

    def test_degenerate_space_rejected(self):
        with pytest.raises(PartitioningError):
            GridPartitioning(Rect(0, 0, 10, 0), rows=2, cols=2)

    def test_cell_extents_tile_the_space(self, grid16):
        total = sum(c.extent.area for c in grid16.cells())
        assert total == pytest.approx(grid16.space.area)

    def test_cell_ids_row_major(self, grid16):
        # Row 0 is the TOP row (paper Figure 2 numbers 1..4 across the top).
        c = grid16.cell(0, 0)
        assert c.cell_id == 0
        assert c.extent.y_max == grid16.space.y_max
        assert grid16.cell(1, 0).cell_id == 4
        assert grid16.cell_by_id(7).index == (1, 3)

    def test_cell_by_id_bounds(self, grid16):
        with pytest.raises(PartitioningError):
            grid16.cell_by_id(16)
        with pytest.raises(PartitioningError):
            grid16.cell_by_id(-1)


class TestPointOwnership:
    def test_interior_point(self, grid16):
        # Cells are 25x25; point (30, 90) is col 1, top row.
        c = grid16.cell_of_point(30, 90)
        assert c.index == (0, 1)

    def test_vertical_boundary_goes_right(self, grid16):
        # x = 25 is owned by column 1, not column 0 (half-open rule).
        assert grid16.cell_of_point(25, 90).col == 1

    def test_horizontal_boundary_goes_down(self, grid16):
        # y = 75 is owned by row 1 (the cell below the boundary).
        assert grid16.cell_of_point(10, 75).row == 1

    def test_space_top_edge(self, grid16):
        assert grid16.cell_of_point(10, 100).row == 0

    def test_space_corners_clamped(self, grid16):
        assert grid16.cell_of_point(100, 0).index == (3, 3)
        assert grid16.cell_of_point(0, 100).index == (0, 0)

    def test_ownership_monotone(self, grid16):
        # Dedup correctness needs: larger x never maps left, smaller y
        # never maps up.
        cols = [grid16.col_of_x(x) for x in [0, 10, 24.9, 25, 60, 99, 100]]
        assert cols == sorted(cols)
        rows = [grid16.row_of_y(y) for y in [100, 80, 75, 50.1, 25, 0]]
        assert rows == sorted(rows)

    def test_cell_of_rect_uses_start_point(self, grid16):
        # Figure 2(a): r1 starts in cell 6 = index (1, 1).
        r = Rect(30, 70, 30, 10)
        assert grid16.cell_of(r).index == (1, 1)


class TestClosedRanges:
    def test_rect_within_one_cell(self, grid16):
        r = Rect(5, 95, 10, 10)
        assert grid16.col_range(r) == (0, 0)
        assert grid16.row_range(r) == (0, 0)

    def test_rect_spanning_columns(self, grid16):
        r = Rect(20, 95, 10, 5)  # x [20, 30] crosses x=25
        assert grid16.col_range(r) == (0, 1)

    def test_touching_boundary_includes_both(self, grid16):
        # Closed semantics: a rectangle ending exactly at x=25 touches
        # column 1 as well.
        r = Rect(20, 95, 5, 5)
        assert grid16.col_range(r) == (0, 1)
        # And one starting exactly at x=25 touches column 0.
        r2 = Rect(25, 95, 5, 5)
        assert grid16.col_range(r2) == (0, 1)

    def test_cells_overlapping_counts(self, grid16):
        r = Rect(10, 90, 30, 30)  # x [10,40], y [60,90]: 2 cols x 2 rows
        cells = grid16.cells_overlapping(r)
        assert len(cells) == 4
        assert {c.index for c in cells} == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_split_superset_of_ownership(self, grid16):
        r = Rect(33, 62, 40, 40)
        owner = grid16.cell_of(r)
        overlapped = {c.cell_id for c in grid16.cells_overlapping(r)}
        assert owner.cell_id in overlapped


class TestCrossing:
    def test_inside_no_crossing(self, grid16):
        assert not grid16.crosses_cell_boundary(
            Rect(5, 95, 10, 10), grid16.cell(0, 0)
        )

    def test_crossing_right(self, grid16):
        assert grid16.crosses_cell_boundary(Rect(20, 95, 10, 5), grid16.cell(0, 0))

    def test_touching_internal_boundary_crosses(self, grid16):
        # Closed cells share the boundary line, so touching it counts.
        assert grid16.crosses_cell_boundary(Rect(20, 95, 5, 5), grid16.cell(0, 0))

    def test_touching_space_edge_does_not_cross(self, grid16):
        # No cell beyond the outer boundary of the space.
        r = Rect(80, 20, 20, 20)  # reaches x=100, y=0 exactly
        assert not grid16.crosses_cell_boundary(r, grid16.cell(3, 3))


class TestMinGap:
    def test_crossing_rect_gap_zero(self, grid16):
        assert grid16.min_gap_to_other_cell(
            Rect(20, 95, 10, 5), grid16.cell(0, 0)
        ) == 0.0

    def test_interior_gap(self, grid16):
        # Cell (1,1) spans x [25,50], y [50,75]; rect x [30,40], y [60,70].
        r = Rect(30, 70, 10, 10)
        gap = grid16.min_gap_to_other_cell(r, grid16.cell(1, 1))
        assert gap == 5.0  # distance to the x=25 or y=75/etc boundary

    def test_corner_cell_ignores_missing_neighbors(self, grid16):
        # Cell (0,0): no neighbors above or to the left.
        r = Rect(2, 98, 3, 3)  # 2 from left, 2 from top, 20 from others
        gap = grid16.min_gap_to_other_cell(r, grid16.cell(0, 0))
        assert gap == 20.0

    def test_single_cell_grid_infinite(self, unit_space):
        grid = GridPartitioning(unit_space, 1, 1)
        assert math.isinf(
            grid.min_gap_to_other_cell(Rect(50, 50, 1, 1), grid.cell(0, 0))
        )


class TestQuadrants:
    def test_fourth_quadrant_membership(self, grid16):
        anchor = grid16.cell(1, 1)
        quadrant = {c.index for c in grid16.fourth_quadrant(anchor)}
        # Figure 2(a): for r1 in cell 6, C4 = cells 6-8, 10-12, 14-16.
        expected = {(r, c) for r in (1, 2, 3) for c in (1, 2, 3)}
        assert quadrant == expected

    def test_fourth_quadrant_size(self, grid16):
        assert grid16.fourth_quadrant_size(grid16.cell(1, 1)) == 9
        assert grid16.fourth_quadrant_size(grid16.cell(3, 3)) == 1
        assert grid16.fourth_quadrant_size(grid16.cell(0, 0)) == 16

    def test_fourth_quadrant_within_infinite_equals_f1(self, grid16):
        r = Rect(30, 70, 5, 5)
        limited = {
            c.cell_id for c in grid16.fourth_quadrant_within(r, 1e12)
        }
        full = {c.cell_id for c in grid16.fourth_quadrant(grid16.cell_of(r))}
        assert limited == full

    def test_fourth_quadrant_within_distance(self, grid16):
        # r in cell (1,1) at x [30,35], y [65,70]; with d=10 only cells
        # within 10 of the rectangle qualify.
        r = Rect(30, 70, 5, 5)
        cells = grid16.fourth_quadrant_within(r, 10.0)
        ids = {c.index for c in cells}
        # (1,1) itself: distance 0; (1,2) starts at x=50: gap 15 > 10.
        assert (1, 1) in ids
        assert (1, 2) not in ids
        # (2,1): below, y gap = 65-50 = 15 > 10 -> excluded.
        assert (2, 1) not in ids

    def test_fourth_quadrant_within_chebyshev_superset(self, grid16):
        r = Rect(26, 74, 10, 10)
        for d in (0.0, 5.0, 20.0, 60.0):
            eucl = {c.cell_id for c in grid16.fourth_quadrant_within(r, d)}
            cheb = {
                c.cell_id
                for c in grid16.fourth_quadrant_within(r, d, metric="chebyshev")
            }
            assert eucl <= cheb

    def test_unknown_metric_rejected(self, grid16):
        with pytest.raises(PartitioningError):
            grid16.fourth_quadrant_within(Rect(1, 99, 1, 1), 5, metric="manhattan")

    def test_negative_distance_rejected(self, grid16):
        with pytest.raises(PartitioningError):
            grid16.fourth_quadrant_within(Rect(1, 99, 1, 1), -1)


class TestCellsWithin:
    def test_zero_distance_equals_overlap(self, grid16):
        r = Rect(30, 70, 30, 10)
        within = {c.cell_id for c in grid16.cells_within(r, 0.0)}
        overlapping = {c.cell_id for c in grid16.cells_overlapping(r)}
        assert within == overlapping

    def test_looks_in_every_direction(self, grid16):
        # Unlike f2, cells ABOVE and LEFT of the rectangle qualify.
        r = Rect(30, 70, 5, 5)  # inside cell (1,1)
        ids = {c.index for c in grid16.cells_within(r, 30.0)}
        assert (0, 1) in ids  # above
        assert (1, 0) in ids  # left
        assert (1, 2) in ids  # right
        assert (2, 1) in ids  # below

    def test_exact_distance_filter(self, grid16):
        r = Rect(30, 70, 5, 5)
        for d in (0.0, 10.0, 40.0):
            got = {c.cell_id for c in grid16.cells_within(r, d)}
            expected = {
                c.cell_id for c in grid16.cells() if c.distance_to_rect(r) <= d
            }
            assert got == expected

    def test_negative_rejected(self, grid16):
        with pytest.raises(PartitioningError):
            grid16.cells_within(Rect(1, 99, 1, 1), -1.0)
