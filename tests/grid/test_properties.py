"""Property-based tests for grid partitioning invariants (hypothesis).

These invariants are the ones the join-correctness proofs lean on:
unique point ownership, split ⊇ ownership, monotone ownership, the
right/down extension fact, and f2 ⊆ f1.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.rectangle import Rect
from repro.grid.partitioning import GridPartitioning

SPACE = Rect.from_corners(0.0, 0.0, 1000.0, 1000.0)

uniform_grids = st.builds(
    GridPartitioning,
    st.just(SPACE),
    rows=st.integers(min_value=1, max_value=9),
    cols=st.integers(min_value=1, max_value=9),
)


@st.composite
def rectilinear_grids(draw) -> GridPartitioning:
    """Non-uniform grids with arbitrary interior boundaries."""
    def edges():
        interior = draw(
            st.lists(
                st.floats(min_value=1.0, max_value=999.0, allow_nan=False),
                min_size=0,
                max_size=6,
                unique=True,
            )
        )
        return [0.0] + sorted(interior) + [1000.0]

    return GridPartitioning.from_boundaries(edges(), edges())


grids = st.one_of(uniform_grids, rectilinear_grids())

coord = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False)
side = st.floats(min_value=0.0, max_value=400.0, allow_nan=False)
dists = st.floats(min_value=0.0, max_value=500.0, allow_nan=False)


@st.composite
def rects_in_space(draw) -> Rect:
    """Rectangles fully inside SPACE (top-left start-point semantics)."""
    x = draw(coord)
    y = draw(coord)
    l = min(draw(side), 1000.0 - x)
    b = min(draw(side), y)
    return Rect(x=x, y=y, l=l, b=b)


@given(grids, coord, coord)
def test_unique_ownership(grid: GridPartitioning, px: float, py: float):
    owner = grid.cell_of_point(px, py)
    assert owner.contains_point(px, py)


@given(grids, rects_in_space())
def test_split_contains_owner(grid: GridPartitioning, r: Rect):
    owner = grid.cell_of(r)
    overlapped = {c.cell_id for c in grid.cells_overlapping(r)}
    assert owner.cell_id in overlapped


@given(grids, rects_in_space())
def test_overlapped_cells_actually_touch(grid: GridPartitioning, r: Rect):
    for c in grid.cells_overlapping(r):
        assert c.touches_rect(r)


@given(grids, rects_in_space())
def test_rect_extends_into_fourth_quadrant_only(grid: GridPartitioning, r: Rect):
    # The geometric fact behind f1 replication and dedup correctness: a
    # rectangle extends only right/down, so every cell it overlaps with
    # positive measure is in the 4th quadrant of its start cell.  Cells
    # touched only along a shared boundary line (closed-split semantics)
    # may lie above/left; the marking conditions cover those cases (see
    # the correctness notes in DESIGN.md).
    owner = grid.cell_of(r)
    for c in grid.cells_overlapping(r):
        if c.is_fourth_quadrant_of(owner):
            continue
        assert c.touches_rect(r)
        # the offending overlap is confined to the cell's boundary
        if c.col < owner.col:
            assert r.x_min == c.x_max
        if c.row < owner.row:
            assert r.y_max == c.y_min


@given(grids, rects_in_space())
def test_crossing_iff_multiple_cells(grid: GridPartitioning, r: Rect):
    owner = grid.cell_of(r)
    crossing = grid.crosses_cell_boundary(r, owner)
    assert crossing == (len(grid.cells_overlapping(r)) > 1)


@given(grids, rects_in_space())
def test_min_gap_consistent_with_crossing(grid: GridPartitioning, r: Rect):
    owner = grid.cell_of(r)
    gap = grid.min_gap_to_other_cell(r, owner)
    if grid.crosses_cell_boundary(r, owner):
        assert gap == 0.0
    elif grid.num_cells > 1:
        # A foreign cell exists at distance `gap` (up to the 1-ulp noise
        # of the two different boundary expressions involved).
        others = [
            c.distance_to_rect(r)
            for c in grid.cells()
            if c.cell_id != owner.cell_id
        ]
        assert min(others) == pytest.approx(gap, rel=1e-9, abs=1e-9)


@settings(max_examples=50)
@given(grids, rects_in_space(), dists)
def test_f2_subset_of_f1_and_exact(grid: GridPartitioning, r: Rect, d: float):
    owner = grid.cell_of(r)
    f1 = {c.cell_id for c in grid.fourth_quadrant(owner)}
    f2 = {c.cell_id for c in grid.fourth_quadrant_within(r, d)}
    assert f2 <= f1
    # Exactness: f2 contains exactly the 4th-quadrant cells within d.
    expected = {
        c.cell_id
        for c in grid.fourth_quadrant(owner)
        if c.distance_to_rect(r) <= d
    }
    assert f2 == expected


@settings(max_examples=50)
@given(grids, rects_in_space(), dists)
def test_f2_chebyshev_exact(grid: GridPartitioning, r: Rect, d: float):
    owner = grid.cell_of(r)
    got = {
        c.cell_id
        for c in grid.fourth_quadrant_within(r, d, metric="chebyshev")
    }
    expected = set()
    for c in grid.fourth_quadrant(owner):
        dx = max(0.0, c.x_min - r.x_max, r.x_min - c.x_max)
        dy = max(0.0, c.y_min - r.y_max, r.y_min - c.y_max)
        if max(dx, dy) <= d:
            expected.add(c.cell_id)
    assert got == expected


@given(grids, coord, coord, coord, coord)
def test_ownership_monotone(grid, x1, x2, y1, y2):
    # Larger x never maps to a smaller column; smaller y never to a
    # smaller row — the monotonicity the dedup-point proof requires.
    if x1 <= x2:
        assert grid.col_of_x(x1) <= grid.col_of_x(x2)
    if y1 >= y2:
        assert grid.row_of_y(y1) <= grid.row_of_y(y2)
