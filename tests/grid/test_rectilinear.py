"""Tests for non-uniform rectilinear partitionings (Section 4 allows
arbitrary row breadths / column lengths; the quantile constructor fits
them to skewed data)."""

import pytest

from repro.data.synthetic import SyntheticSpec, generate_rects
from repro.errors import PartitioningError
from repro.geometry.rectangle import Rect
from repro.grid.partitioning import GridPartitioning


@pytest.fixture
def skew_grid() -> GridPartitioning:
    # columns at 0|10|40|100, rows (ascending y) at 0|70|100
    return GridPartitioning.from_boundaries(
        x_edges=[0, 10, 40, 100], y_edges=[0, 70, 100]
    )


class TestFromBoundaries:
    def test_shape(self, skew_grid):
        assert skew_grid.cols == 3
        assert skew_grid.rows == 2
        assert skew_grid.num_cells == 6
        assert not skew_grid.is_uniform

    def test_space_derived(self, skew_grid):
        assert skew_grid.space == Rect.from_corners(0, 0, 100, 100)

    def test_cell_extents(self, skew_grid):
        # top-left cell: x [0,10], y [70,100]
        c = skew_grid.cell(0, 0)
        assert c.extent == Rect.from_corners(0, 70, 10, 100)
        # bottom-right cell: x [40,100], y [0,70]
        c = skew_grid.cell(1, 2)
        assert c.extent == Rect.from_corners(40, 0, 100, 70)

    def test_extents_tile_space(self, skew_grid):
        assert sum(c.extent.area for c in skew_grid.cells()) == pytest.approx(
            skew_grid.space.area
        )

    def test_non_monotone_rejected(self):
        with pytest.raises(PartitioningError):
            GridPartitioning.from_boundaries([0, 10, 10, 20], [0, 1])
        with pytest.raises(PartitioningError):
            GridPartitioning.from_boundaries([0, 10], [5, 1])

    def test_too_few_boundaries_rejected(self):
        with pytest.raises(PartitioningError):
            GridPartitioning.from_boundaries([0], [0, 1])


class TestOwnershipAndRanges:
    def test_point_ownership(self, skew_grid):
        assert skew_grid.cell_of_point(5, 90).index == (0, 0)
        assert skew_grid.cell_of_point(15, 90).index == (0, 1)
        assert skew_grid.cell_of_point(50, 30).index == (1, 2)

    def test_boundary_tie_breaks(self, skew_grid):
        # x = 40 belongs to the right column; y = 70 to the lower row.
        assert skew_grid.cell_of_point(40, 90).col == 2
        assert skew_grid.cell_of_point(5, 70).row == 1

    def test_split_ranges(self, skew_grid):
        r = Rect(5, 90, 40, 30)  # x [5,45], y [60,90]: all cols, both rows
        assert skew_grid.col_range(r) == (0, 2)
        assert skew_grid.row_range(r) == (0, 1)

    def test_crossing(self, skew_grid):
        inner = Rect(45, 60, 10, 10)  # strictly inside cell (1,2)
        assert not skew_grid.crosses_cell_boundary(inner, skew_grid.cell(1, 2))
        crosser = Rect(35, 60, 10, 10)  # spans x=40
        assert skew_grid.crosses_cell_boundary(crosser, skew_grid.cell(1, 1))

    def test_min_gap_accounts_for_uneven_cells(self, skew_grid):
        # cell (1,2) spans x [40,100], y [0,70]
        r = Rect(60, 40, 5, 5)
        gap = skew_grid.min_gap_to_other_cell(r, skew_grid.cell(1, 2))
        # distances: left 20, top 30 -> nearest other cell at 20; the
        # right/bottom sides are space borders with no neighbors.
        assert gap == 20.0


class TestUniformEquivalence:
    def test_from_boundaries_matches_uniform(self):
        space = Rect.from_corners(0, 0, 100, 100)
        uniform = GridPartitioning(space, 4, 4)
        explicit = GridPartitioning.from_boundaries(
            [0, 25, 50, 75, 100], [0, 25, 50, 75, 100]
        )
        for r in [Rect(33, 62, 40, 40), Rect(0, 100, 100, 100), Rect(25, 75, 0, 0)]:
            assert uniform.cell_of(r).cell_id == explicit.cell_of(r).cell_id
            assert uniform.col_range(r) == explicit.col_range(r)
            assert uniform.row_range(r) == explicit.row_range(r)
        assert uniform.is_uniform and explicit.is_uniform


class TestQuantileGrid:
    @pytest.fixture
    def clustered(self):
        spec = SyntheticSpec(
            n=2_000, x_range=(0, 1000), y_range=(0, 1000),
            l_range=(0, 5), b_range=(0, 5),
            dx="clustered", dy="clustered", clusters=3, seed=77,
        )
        return [r for __, r in generate_rects(spec)]

    def test_balances_start_points(self, clustered):
        space = Rect.from_corners(0, 0, 1000, 1000)
        uniform = GridPartitioning(space, 4, 4)
        adaptive = GridPartitioning.quantile(clustered, 4, 4, space)

        def max_cell_load(grid):
            counts = [0] * grid.num_cells
            for r in clustered:
                counts[grid.cell_of(r).cell_id] += 1
            return max(counts)

        # The quantile grid's hottest cell is far below the uniform one's.
        assert max_cell_load(adaptive) < 0.7 * max_cell_load(uniform)

    def test_respects_declared_space(self, clustered):
        space = Rect.from_corners(0, 0, 1000, 1000)
        grid = GridPartitioning.quantile(clustered, 3, 3, space)
        assert grid.space == space

    def test_degenerate_sample(self):
        # All identical start-points: still a valid grid.
        rects = [Rect(50, 50, 1, 1)] * 20
        grid = GridPartitioning.quantile(
            rects, 2, 2, Rect.from_corners(0, 0, 100, 100)
        )
        assert grid.num_cells == 4
        assert grid.cell_of(rects[0])  # routable

    def test_empty_sample_rejected(self):
        with pytest.raises(PartitioningError):
            GridPartitioning.quantile([], 2, 2)


class TestJoinsOnRectilinearGrids:
    """The algorithms only consume the partitioning API, so they must be
    correct on non-uniform grids too."""

    def test_all_algorithms_on_skewed_grid(self):
        from repro.data.synthetic import SyntheticSpec, generate_relations
        from repro.joins.reference import brute_force_join
        from repro.joins.registry import make_algorithm
        from repro.query.predicates import Overlap
        from repro.query.query import Query

        spec = SyntheticSpec(
            n=150, x_range=(0, 500), y_range=(0, 500),
            l_range=(0, 60), b_range=(0, 60),
            dx="clustered", dy="clustered", clusters=3, seed=13,
        )
        datasets = generate_relations(spec, ["R1", "R2", "R3"])
        sample = [r for __, r in datasets["R1"]]
        grid = GridPartitioning.quantile(sample, 3, 3, spec.space)
        query = Query.chain(["R1", "R2", "R3"], Overlap())
        expected = brute_force_join(query, datasets)
        for name in ("cascade", "all-rep", "c-rep"):
            result = make_algorithm(name).run(query, datasets, grid)
            assert result.tuples == expected, name
        result = make_algorithm("c-rep-l", query=query, d_max=spec.max_diagonal).run(
            query, datasets, grid
        )
        assert result.tuples == expected
