"""Unit tests for Project / Split / Replicate, including the paper's
Figure 2 example rendered on a 4x4 grid over a 100x100 space.

Paper cells are numbered 1..16 row-major from the top-left; this library
is 0-based, so paper cell ``n`` is id ``n - 1``.
"""

from functools import partial

from repro.geometry.rectangle import Rect
from repro.grid.transforms import (
    project,
    replicate,
    replicate_f1,
    replicate_f2,
    split,
    transform_relation,
)

# Figure 2(a)'s rectangle r1: starts in paper cell 6, spans cells 6 and 7.
R1 = Rect(30, 70, 30, 10)  # x [30, 60], y [60, 70]


def ids(pairs):
    return sorted(cell_id for cell_id, __ in pairs)


class TestProject:
    def test_single_pair(self, grid16):
        out = list(project(R1, grid16))
        assert len(out) == 1
        cell_id, rect = out[0]
        assert cell_id == 5  # paper cell 6
        assert rect == R1

    def test_projects_to_start_point_cell(self, grid16):
        r = Rect(80, 10, 15, 5)
        (cell_id, __), = project(r, grid16)
        assert cell_id == grid16.cell_of(r).cell_id


class TestSplit:
    def test_figure2_r1(self, grid16):
        # Paper: split returns cells 6 and 7.
        assert ids(split(R1, grid16)) == [5, 6]

    def test_contained_rect_single_cell(self, grid16):
        assert ids(split(Rect(5, 95, 5, 5), grid16)) == [0]

    def test_spanning_rect(self, grid16):
        r = Rect(10, 90, 50, 50)  # x [10,60], y [40,90]: cols 0-2, rows 0-2
        assert len(ids(split(r, grid16))) == 9


class TestReplicate:
    def test_figure2_f1(self, grid16):
        # Paper: replicate f1 returns cells 6-8, 10-12, 14-16.
        expected = [5, 6, 7, 9, 10, 11, 13, 14, 15]
        assert ids(replicate_f1(R1, grid16)) == expected

    def test_figure2_f2(self, grid16):
        # Paper: with a suitable d, f2 returns cells 6, 7, 10 and 11 —
        # the 4th-quadrant cells within distance d of r1.
        assert ids(replicate_f2(R1, grid16, 12.0)) == [5, 6, 9, 10]

    def test_f2_infinite_equals_f1(self, grid16):
        assert ids(replicate_f2(R1, grid16, float("inf"))) == ids(
            replicate_f1(R1, grid16)
        )

    def test_f2_zero_keeps_touching_cells(self, grid16):
        out = ids(replicate_f2(R1, grid16, 0.0))
        assert out == [5, 6]  # only the cells the rectangle touches

    def test_generic_replicate_matches_f1(self, grid16):
        anchor = grid16.cell_of(R1)
        generic = ids(
            replicate(R1, grid16, lambda c, u: c.is_fourth_quadrant_of(anchor))
        )
        assert generic == ids(replicate_f1(R1, grid16))

    def test_f1_always_includes_own_cell(self, grid16):
        for r in [Rect(1, 99, 1, 1), Rect(90, 5, 5, 5), Rect(48, 52, 4, 4)]:
            own = grid16.cell_of(r).cell_id
            assert own in ids(replicate_f1(r, grid16))


class TestTransformRelation:
    def test_split_relation_size(self, grid16):
        relation = [Rect(5, 95, 3, 3), R1, Rect(70, 20, 10, 10)]
        pairs = list(transform_relation(relation, grid16, split))
        per_rect = [len(ids(split(r, grid16))) for r in relation]
        assert len(pairs) == sum(per_rect)

    def test_project_relation_one_pair_each(self, grid16):
        relation = [Rect(i * 7.0, 90.0, 2.0, 2.0) for i in range(10)]
        pairs = list(transform_relation(relation, grid16, project))
        assert len(pairs) == 10

    def test_partial_binding_for_f2(self, grid16):
        relation = [R1]
        pairs = list(
            transform_relation(relation, grid16, partial(replicate_f2, d=12.0))
        )
        assert ids(pairs) == [5, 6, 9, 10]
