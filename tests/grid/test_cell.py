"""Unit tests for the Cell value object."""

from repro.geometry.rectangle import Rect


class TestCell:
    def test_extent_and_index(self, grid16):
        c = grid16.cell(2, 1)
        assert c.index == (2, 1)
        assert c.cell_id == 9
        assert c.extent == Rect(25, 50, 25, 25)

    def test_contains_point_closed(self, grid16):
        c = grid16.cell(0, 0)  # x [0,25], y [75,100]
        assert c.contains_point(25, 75)  # boundary corner: closed
        assert not c.contains_point(26, 75)

    def test_distance_to_rect(self, grid16):
        c = grid16.cell(0, 0)
        assert c.distance_to_rect(Rect(10, 90, 5, 5)) == 0
        assert c.distance_to_rect(Rect(30, 90, 5, 5)) == 5  # right of cell

    def test_fourth_quadrant_relation(self, grid16):
        a = grid16.cell(1, 1)
        assert grid16.cell(1, 1).is_fourth_quadrant_of(a)
        assert grid16.cell(3, 3).is_fourth_quadrant_of(a)
        assert not grid16.cell(0, 1).is_fourth_quadrant_of(a)
        assert not grid16.cell(1, 0).is_fourth_quadrant_of(a)

    def test_frozen_and_hashable(self, grid16):
        c1 = grid16.cell(1, 2)
        c2 = grid16.cell(1, 2)
        assert c1 == c2
        assert len({c1, c2}) == 1
