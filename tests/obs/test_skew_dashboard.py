"""Tests for the skew analyzer and the plain-text job dashboard."""

import pytest

from repro.mapreduce.counters import C
from repro.mapreduce.dfs import InMemoryDFS
from repro.mapreduce.engine import Cluster
from repro.mapreduce.job import MapReduceJob
from repro.obs.dashboard import render_job_dashboard, render_workflow_dashboard
from repro.obs.skew import DurationStats, analyze_job, workflow_skew


def _skewed_job(records_per_reducer, num_reducers=None, name="skewed"):
    """One job whose reducer r receives ``records_per_reducer[r]`` records."""

    def mapper(key, line, ctx):
        r, copies = line.split()
        for i in range(int(copies)):
            ctx.emit(int(r), f"v{i}")

    def reducer(key, values, ctx):
        ctx.emit(f"{key}\t{len(values)}")

    cluster = Cluster(dfs=InMemoryDFS())
    cluster.dfs.write_file(
        "in", [f"{r} {n}" for r, n in enumerate(records_per_reducer)]
    )
    result = cluster.run_job(
        MapReduceJob(
            name=name,
            input_paths=["in"],
            output_path=f"{name}/out",
            mapper=mapper,
            reducer=reducer,
            num_reducers=num_reducers or len(records_per_reducer),
            partitioner=lambda key, n: key % n,
        )
    )
    return result


def _map_only_job():
    cluster = Cluster(dfs=InMemoryDFS())
    cluster.dfs.write_file("in", ["a", "b", "c"])
    return cluster.run_job(
        MapReduceJob(
            name="map-only",
            input_paths=["in"],
            output_path="mo/out",
            mapper=lambda key, line, ctx: ctx.emit(0, line.upper()),
            reducer=None,
            num_reducers=2,
        )
    )


class TestDurationStats:
    def test_empty(self):
        stats = DurationStats.from_durations([])
        assert stats.count == 0
        assert stats.mean_s == 0.0
        assert stats.p50_s == stats.p95_s == stats.max_s == 0.0

    def test_nearest_rank_percentiles(self):
        stats = DurationStats.from_durations(list(range(1, 11)))  # 1..10
        assert stats.count == 10
        assert stats.total_s == 55
        assert stats.mean_s == 5.5
        assert stats.p50_s == 5  # ceil(0.50 * 10) = rank 5
        assert stats.p95_s == 10  # ceil(0.95 * 10) = rank 10
        assert stats.max_s == 10

    def test_single_sample(self):
        stats = DurationStats.from_durations([2.5])
        assert stats.p50_s == stats.p95_s == stats.max_s == 2.5

    def test_order_independent(self):
        assert DurationStats.from_durations([3, 1, 2]) == DurationStats.from_durations(
            [1, 2, 3]
        )

    def test_as_dict_keys(self):
        assert set(DurationStats().as_dict()) == {
            "count", "total_s", "mean_s", "p50_s", "p95_s", "max_s",
        }


class TestAnalyzeJob:
    def test_reducer_records_match_engine(self):
        result = _skewed_job([10, 40, 10, 20])
        report = analyze_job(result)
        assert report.reducer_records == [10, 40, 10, 20]
        assert report.hottest_reducer == 1
        assert report.skew == pytest.approx(40 / 20)  # max / mean

    def test_total_equals_reduce_input_counter(self):
        """The acceptance identity: per-reducer counts sum to the counter."""
        result = _skewed_job([5, 0, 25, 10])
        report = analyze_job(result)
        assert report.total_reduce_records == result.counters.engine(
            C.REDUCE_INPUT_RECORDS
        )

    def test_task_durations_and_makespans(self):
        result = _skewed_job([10, 10])
        report = analyze_job(result)
        assert report.map_durations.count == len(result.map_tasks)
        assert report.reduce_durations.count == len(result.reduce_tasks)
        assert report.map_durations.max_s > 0
        assert report.measured_map_makespan_s > 0
        assert report.measured_reduce_makespan_s > 0
        assert report.modelled_map_makespan_s == result.cost.map_s
        assert report.modelled_reduce_makespan_s == result.cost.reduce_s

    def test_map_only_job_has_no_reduce_picture(self):
        report = analyze_job(_map_only_job())
        assert report.reducer_records == []
        assert report.hottest_reducer is None
        assert report.skew == 0.0
        assert report.reduce_durations.count == 0
        assert report.map_durations.count > 0

    def test_as_dict_round_trips_records(self):
        report = analyze_job(_skewed_job([1, 3]))
        d = report.as_dict()
        assert d["reducer_records"] == [1, 3]
        assert d["hottest_reducer"] == 1
        assert d["map_durations"]["count"] == report.map_durations.count


class TestWorkflowSkew:
    def test_picks_heaviest_reduce_job(self):
        light = _skewed_job([2, 2], name="light")  # even: skew 1.0
        heavy = _skewed_job([10, 90], name="heavy")  # skew 1.8
        assert workflow_skew([light, heavy]) == analyze_job(heavy).skew
        assert workflow_skew([heavy, light]) == analyze_job(heavy).skew

    def test_ignores_map_only_jobs(self):
        assert workflow_skew([_map_only_job()]) == 0.0
        reduced = _skewed_job([4, 8])
        assert workflow_skew([_map_only_job(), reduced]) == analyze_job(reduced).skew

    def test_empty_chain(self):
        assert workflow_skew([]) == 0.0


class TestDashboard:
    def test_sections_present(self):
        text = render_job_dashboard(_skewed_job([10, 40, 10, 20]))
        assert "-- job skewed " in text
        assert "wall:" in text
        assert "simulated:" in text
        assert "map tasks:" in text
        assert "reduce tasks:" in text
        assert "makespan: measured" in text
        assert "reduce input: 80 records over 4 reducers" in text
        assert "skew max/mean 2.00x" in text
        assert "<- hottest cell" in text

    def test_hottest_marker_on_right_row(self):
        text = render_job_dashboard(_skewed_job([10, 40, 10, 20]))
        (hot_line,) = [ln for ln in text.splitlines() if "<- hottest cell" in ln]
        assert hot_line.lstrip().startswith("r001 ")
        assert " 40" in hot_line

    def test_map_only_note(self):
        text = render_job_dashboard(_map_only_job())
        assert "(map-only job: no reduce phase)" in text
        assert "makespan:" not in text

    def test_many_reducers_binned(self):
        # 40 reducers collapse into <= 16 bins labelled with id ranges;
        # a bin reports its max so the hot cell stays visible.
        records = [5] * 40
        records[23] = 50
        text = render_job_dashboard(_skewed_job(records))
        bars = [ln for ln in text.splitlines() if ln.lstrip().startswith("r0")]
        assert 0 < len(bars) <= 16
        assert any("-r" in ln for ln in bars)  # range labels like r021-r023
        (hot_line,) = [ln for ln in bars if "<- hottest cell" in ln]
        assert " 50" in hot_line

    def test_workflow_dashboard_header_and_blocks(self):
        a = _skewed_job([3, 3], name="job-a")
        b = _skewed_job([1, 5], name="job-b")
        text = render_workflow_dashboard([a, b], title="c-rep")
        assert text.splitlines()[0].startswith("== c-rep: 2 job(s), wall ")
        assert "-- job job-a " in text
        assert "-- job job-b " in text


def _empty_input_job():
    cluster = Cluster(dfs=InMemoryDFS())
    cluster.dfs.write_file("in", [])
    return cluster.run_job(
        MapReduceJob(
            name="empty",
            input_paths=["in"],
            output_path="empty/out",
            mapper=lambda key, line, ctx: ctx.emit(0, line),
            reducer=lambda key, values, ctx: ctx.emit(f"{key}\t{len(values)}"),
            num_reducers=2,
        )
    )


class TestDegenerateJobs:
    """Zero-reducer, empty-input and single-task jobs must never crash
    the analyzer or the dashboards (no division by zero, no empty-max)."""

    def test_empty_input_analyze(self):
        report = analyze_job(_empty_input_job())
        assert report.total_reduce_records == 0
        assert report.skew == 0.0
        assert report.hottest_reducer is None or report.skew == 0.0

    def test_empty_input_dashboards(self):
        result = _empty_input_job()
        text = render_job_dashboard(result)
        assert "-- job empty " in text
        wf = render_workflow_dashboard([result], title="empty-wf")
        assert wf.splitlines()[0].startswith("== empty-wf: 1 job(s)")

    def test_single_task_analyze_and_dashboard(self):
        result = _skewed_job([7], name="single")
        report = analyze_job(result)
        assert report.reducer_records == [7]
        assert report.hottest_reducer == 0
        assert report.skew == pytest.approx(1.0)
        text = render_job_dashboard(result)
        assert "reduce input: 7 records over 1 reducers" in text

    def test_map_only_workflow_dashboard(self):
        text = render_workflow_dashboard([_map_only_job()], title="mo")
        assert "(map-only job: no reduce phase)" in text

    def test_mixed_degenerate_workflow(self):
        chain = [_map_only_job(), _empty_input_job(), _skewed_job([7], name="s")]
        text = render_workflow_dashboard(chain, title="mixed")
        assert text.splitlines()[0].startswith("== mixed: 3 job(s)")
        for marker in ("-- job map-only ", "-- job empty ", "-- job s "):
            assert marker in text

    def test_degenerate_jobs_have_critical_paths(self):
        from repro.obs.critical_path import analyze_critical_path, job_critical_path

        for result in (_empty_input_job(), _map_only_job()):
            path = job_critical_path(result)
            assert path.total_s >= 0
            assert path.describe()
        wf = analyze_critical_path([_empty_input_job(), _skewed_job([7], name="t")])
        assert wf.attribution_line()
