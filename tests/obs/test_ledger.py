"""Tests for the run ledger: sinks, event stamping, and replay."""

import json

import pytest

from repro.mapreduce.counters import C
from repro.mapreduce.dfs import InMemoryDFS
from repro.mapreduce.engine import Cluster
from repro.mapreduce.faults import FaultPlan, RetryPolicy
from repro.mapreduce.job import MapReduceJob, hash_partitioner
from repro.mapreduce.workflow import Workflow
from repro.obs.ledger import (
    JsonlSink,
    LedgerRun,
    MemorySink,
    NullLedger,
    RunLedger,
    read_ledger,
)


def _word_count_job(name="wc", output="out"):
    def mapper(key, line, ctx):
        for word in line.split():
            ctx.emit(word, 1)

    def reducer(word, counts, ctx):
        ctx.emit(f"{word}\t{sum(counts)}")

    return MapReduceJob(
        name=name,
        input_paths=["in"],
        output_path=output,
        mapper=mapper,
        reducer=reducer,
        num_reducers=3,
        partitioner=hash_partitioner,
    )


def _cluster(ledger, **kwargs):
    cluster = Cluster(dfs=InMemoryDFS(), ledger=ledger, **kwargs)
    cluster.dfs.write_file("in", ["a b a c", "b c d", "a"] * 10)
    return cluster


class TestNullLedger:
    def test_disabled_and_inert(self):
        led = NullLedger()
        assert led.enabled is False
        led.manifest(kernel="numpy")
        led.event("job_start", job="x")
        led.close()  # all no-ops


class TestRunLedger:
    def test_events_are_sequenced_and_stamped(self):
        sink = MemorySink()
        led = RunLedger(sink)
        led.event("job_start", job="a")
        led.event("job_commit", job="a", simulated_s=1.5)
        assert [e["seq"] for e in sink.events] == [0, 1]
        assert all(e["t_s"] >= 0 for e in sink.events)
        assert sink.events[0]["type"] == "job_start"
        assert sink.events[1]["simulated_s"] == 1.5

    def test_manifest_first_call_wins(self):
        sink = MemorySink()
        led = RunLedger(sink)
        led.manifest(kernel="numpy", seed=11)
        led.manifest(kernel="python")  # ignored: the run had one config
        manifests = [e for e in sink.events if e["type"] == "run_manifest"]
        assert len(manifests) == 1
        assert manifests[0]["config"] == {"kernel": "numpy", "seed": 11}

    def test_default_sink_is_memory(self):
        led = RunLedger()
        led.event("spill", task=0, records=5, files=1, bytes=100)
        assert led.sink.events[0]["records"] == 5


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        led = RunLedger(JsonlSink(path))
        led.manifest(kernel="numpy")
        led.event("job_start", job="wc")
        led.event("job_commit", job="wc", simulated_s=2.0)
        led.close()
        events = read_ledger(path)
        assert [e["type"] for e in events] == [
            "run_manifest", "job_start", "job_commit",
        ]
        assert events[0]["config"] == {"kernel": "numpy"}

    def test_lazy_open(self, tmp_path):
        path = str(tmp_path / "never.jsonl")
        led = RunLedger(JsonlSink(path))
        led.close()  # no events -> file never created
        assert not (tmp_path / "never.jsonl").exists()

    def test_lines_survive_without_close(self, tmp_path):
        # Line buffering: a crashed run leaves complete events readable.
        path = str(tmp_path / "crash.jsonl")
        led = RunLedger(JsonlSink(path))
        led.event("job_start", job="wc")
        lines = [
            json.loads(line)
            for line in open(path, encoding="utf-8")
        ]
        assert lines[0]["type"] == "job_start"
        led.close()


class TestEngineJournal:
    def test_clean_run_brackets(self):
        sink = MemorySink()
        cluster = _cluster(RunLedger(sink))
        cluster.run_job(_word_count_job())
        types = [e["type"] for e in sink.events]
        assert types[0] == "run_manifest"
        assert types.count("job_start") == 1
        assert types.count("job_commit") == 1
        assert types.index("job_start") < types.index("job_commit")
        commit = next(e for e in sink.events if e["type"] == "job_commit")
        assert commit["job"] == "wc"
        assert "counters" in commit and commit["simulated_s"] > 0

    def test_cluster_manifest_carries_config(self):
        sink = MemorySink()
        cluster = _cluster(RunLedger(sink))
        cluster.run_job(_word_count_job())
        manifest = sink.events[0]["config"]
        assert manifest["kernel"] == cluster.resolved_kernel
        assert manifest["executor"] == "serial"

    def test_replay_matches_engine_counters_under_faults(self):
        plan = (
            FaultPlan()
            .fail_task("map", 0)
            .corrupt_result("reduce", 1)
            .fail_dfs_write(0)
        )
        sink = MemorySink()
        cluster = _cluster(
            RunLedger(sink),
            fault_plan=plan,
            retry=RetryPolicy(max_attempts=3),
        )
        result = cluster.run_job(_word_count_job())
        run = LedgerRun.from_events(sink.events)
        job = run.job("wc")
        eng = result.counters.engine
        assert job.attempts == eng(C.TASK_ATTEMPTS)
        assert job.failures == eng(C.TASK_FAILURES)
        assert job.failures == 3  # one per injected fault, incl. the write
        retries = [e for e in job.events if e["type"] == "task_retry"]
        assert {(e["phase"], e["task"]) for e in retries} == {
            ("map", 0), ("reduce", 1), ("write", 0),
        }

    def test_replay_counts_skipping_mode(self):
        plan = FaultPlan().poison_record(0, 2)
        sink = MemorySink()
        cluster = _cluster(
            RunLedger(sink),
            fault_plan=plan,
            retry=RetryPolicy(max_attempts=2, max_skipped_records=1),
        )
        result = cluster.run_job(_word_count_job())
        run = LedgerRun.from_events(sink.events)
        job = run.job("wc")
        eng = result.counters.engine
        assert job.skipped_records == eng(C.SKIPPED_RECORDS) == 1
        skip = next(e for e in job.events if e["type"] == "task_skip")
        assert skip["offset"] == 2 and skip["task"] == 0
        # The skipped attempt is logged but never charged as a failure.
        assert job.failures == eng(C.TASK_FAILURES) == 0

    def test_replay_counts_spills(self):
        sink = MemorySink()
        cluster = _cluster(RunLedger(sink), memory_budget=256)
        result = cluster.run_job(_word_count_job())
        run = LedgerRun.from_events(sink.events)
        job = run.job("wc")
        eng = result.counters.engine
        assert eng(C.SPILLED_RECORDS) > 0  # the budget actually bit
        assert job.spilled_records == eng(C.SPILLED_RECORDS)
        assert job.spill_files == eng(C.SPILL_FILES)
        assert job.spill_bytes == eng(C.SPILL_BYTES)

    def test_replay_speculation_and_timeouts(self):
        plan = FaultPlan().delay_task("map", 1, delay_s=0.3)
        sink = MemorySink()
        cluster = _cluster(
            RunLedger(sink),
            executor="thread",
            num_workers=4,
            fault_plan=plan,
            retry=RetryPolicy(
                max_attempts=2,
                speculate=True,
                speculation_threshold=0.5,
                speculation_min_runtime_s=0.01,
            ),
        )
        result = cluster.run_job(_word_count_job())
        run = LedgerRun.from_events(sink.events)
        job = run.job("wc")
        eng = result.counters.engine
        assert job.attempts == eng(C.TASK_ATTEMPTS)
        assert job.failures == eng(C.TASK_FAILURES)
        assert job.speculative_launches == eng(C.SPECULATIVE_LAUNCHES)
        assert job.speculative_wins == eng(C.SPECULATIVE_WINS)
        assert job.timeouts == eng(C.TASK_TIMEOUTS)


class TestWorkflowJournal:
    def test_checkpoint_events_name_their_job(self):
        sink = MemorySink()
        cluster = _cluster(RunLedger(sink), checkpoint_dir="ckpt")
        Workflow(cluster).run(_word_count_job())
        writes = [e for e in sink.events if e["type"] == "checkpoint_write"]
        assert len(writes) == 1
        assert writes[0]["job"] == "wc"
        assert writes[0]["jobs_completed"] == 1
        run = LedgerRun.from_events(sink.events)
        assert run.job("wc").checkpoint_writes == 1

    def test_restore_event_on_resume(self):
        dfs = InMemoryDFS()
        dfs.write_file("in", ["a b", "c d"])
        first = Cluster(dfs=dfs, checkpoint_dir="ckpt")
        Workflow(first).run(_word_count_job())
        sink = MemorySink()
        second = Cluster(
            dfs=dfs, checkpoint_dir="ckpt", resume=True, ledger=RunLedger(sink)
        )
        result = Workflow(second).run(_word_count_job())
        assert result.resumed
        restores = [e for e in sink.events if e["type"] == "checkpoint_restore"]
        assert len(restores) == 1 and restores[0]["job"] == "wc"
        run = LedgerRun.from_events(sink.events)
        job = run.job("wc")
        assert job.restored and not job.started


class TestLedgerRun:
    def test_attribution_across_jobs(self):
        events = [
            {"type": "run_manifest", "config": {"kernel": "numpy"}},
            {"type": "job_start", "job": "a"},
            {"type": "task_attempt", "phase": "map", "task": 0,
             "attempt": 0, "outcome": "ok", "charged": False},
            {"type": "job_commit", "job": "a", "simulated_s": 1.0},
            {"type": "job_start", "job": "b"},
            {"type": "task_attempt", "phase": "map", "task": 0,
             "attempt": 0, "outcome": "failed", "charged": True},
            {"type": "job_commit", "job": "b", "simulated_s": 2.0},
            {"type": "checkpoint_write", "job": "b", "jobs_completed": 2},
        ]
        run = LedgerRun.from_events(events)
        assert run.manifest == {"kernel": "numpy"}
        assert [j.name for j in run.jobs] == ["a", "b"]
        assert run.job("a").attempts == 1 and run.job("a").failures == 0
        assert run.job("b").failures == 1
        assert run.job("b").checkpoint_writes == 1
        assert run.total_attempts == 2
        assert run.total_failures == 1

    def test_unknown_event_types_are_kept(self):
        events = [
            {"type": "job_start", "job": "a"},
            {"type": "future_thing", "payload": 1},
            {"type": "job_commit", "job": "a"},
        ]
        run = LedgerRun.from_events(events)
        assert len(run.job("a").events) == 3

    def test_missing_job_lookup(self):
        assert LedgerRun.from_events([]).job("nope") is None


class TestWorkerReconciliation:
    """The ledger is the journal of record for worker failure domains:
    replaying it through LedgerRun must reproduce the engine's worker
    counters exactly — no event lost, none double-counted."""

    def _chaos_run(self, *, plan, retry):
        sink = MemorySink()
        cluster = _cluster(
            RunLedger(sink),
            executor="serial",
            num_workers=4,
            split_records=10,
            fault_plan=plan,
            retry=retry,
        )
        result = cluster.run_job(_word_count_job())
        return result, LedgerRun.from_events(sink.events)

    def test_worker_tallies_reconcile_with_engine_counters(self):
        plan = (
            FaultPlan()
            .fail_worker("w1", phase="map", index=1, attempt=0)
            .fail_worker("w2", phase="reduce", index=0, attempt=0, silent=True)
        )
        result, run = self._chaos_run(plan=plan, retry=RetryPolicy(max_attempts=3))
        record = run.job("wc")
        eng = result.counters.engine
        assert record.worker_failures == eng(C.WORKER_FAILURES) == 2
        assert record.map_outputs_lost == eng(C.MAP_OUTPUT_LOST) > 0
        assert record.tasks_reexecuted == eng(C.TASKS_REEXECUTED) > 0
        assert record.workers_blacklisted == eng(C.WORKERS_BLACKLISTED) == 0
        assert record.lost_attempts > 0

    def test_blacklist_tally_reconciles(self):
        plan = (
            FaultPlan()
            .fail_task("map", 0, attempt=0)
            .fail_task("map", 0, attempt=1)
        )
        result, run = self._chaos_run(
            plan=plan,
            retry=RetryPolicy(max_attempts=3, blacklist_after=1),
        )
        record = run.job("wc")
        eng = result.counters.engine
        assert record.workers_blacklisted == eng(C.WORKERS_BLACKLISTED) > 0
        assert record.failures == eng(C.TASK_FAILURES)

    def test_lost_attempts_are_never_charged_as_failures(self):
        """In-flight attempts abandoned by a worker death reconcile to
        ``lost_attempts``, not ``failures`` — the engine does not charge
        them against max_attempts, and neither may the replay."""
        plan = FaultPlan().fail_worker("w1", phase="map", index=1, attempt=0)
        result, run = self._chaos_run(plan=plan, retry=RetryPolicy(max_attempts=3))
        record = run.job("wc")
        lost_events = [
            e
            for e in record.events
            if e.get("type") == "task_attempt"
            and e.get("outcome") == "worker_lost"
        ]
        assert lost_events
        assert record.lost_attempts == len(lost_events)
        assert not any(e.get("charged") for e in lost_events)
        assert record.failures == result.counters.engine(C.TASK_FAILURES) == 0

    def test_speculative_loser_on_dead_worker_not_double_charged(self):
        """A speculative attempt abandoned because its worker died is a
        ``worker_lost`` outcome: one lost attempt, zero failures, zero
        speculative wins.  (Synthetic events: the session path that
        produces this combination is timing-dependent by design.)"""
        events = [
            {"type": "job_start", "job": "j"},
            {
                "type": "task_attempt",
                "job": "j",
                "phase": "map",
                "index": 3,
                "attempt": 1,
                "speculative": True,
                "outcome": "worker_lost",
                "charged": False,
                "worker": "w2",
            },
            {"type": "worker_lost", "job": "j", "worker": "w2"},
            {"type": "job_commit", "job": "j"},
        ]
        record = LedgerRun.from_events(events).job("j")
        assert record.lost_attempts == 1
        assert record.worker_failures == 1
        assert record.failures == 0
        assert record.speculative_wins == 0
        # The launch itself still counts as an attempt (it ran).
        assert record.attempts == 1


class TestLedgerIsObserver:
    def test_ledgered_run_is_byte_identical(self):
        bare = _cluster(NullLedger())
        bare_result = bare.run_job(_word_count_job())
        ledgered = _cluster(RunLedger(MemorySink()))
        led_result = ledgered.run_job(_word_count_job())
        assert led_result.counters.as_dict() == bare_result.counters.as_dict()
        assert led_result.simulated_seconds == bare_result.simulated_seconds
        assert [
            ledgered.dfs.read_file(p) for p in ledgered.dfs.resolve("out")
        ] == [bare.dfs.read_file(p) for p in bare.dfs.resolve("out")]


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main([__file__, "-q"]))
