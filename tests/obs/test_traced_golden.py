"""Golden test: tracing observes, it never changes the computation.

The observability acceptance contract of PR 3: with a live
:class:`~repro.obs.trace.TraceRecorder` attached, every algorithm's
counters, part files and simulated seconds are byte-identical to an
untraced run — recording must be a pure observer.  The same runs also
feed the trace-side acceptance checks: the emitted trace validates
against the Chrome trace-event schema, and the skew report's per-reducer
record counts sum exactly to the ``REDUCE_INPUT_RECORDS`` counter of
every reduce job.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.common import derive_grid
from repro.experiments.workloads import synthetic_chain
from repro.joins.registry import ALGORITHMS, make_algorithm
from repro.mapreduce.counters import C
from repro.mapreduce.engine import Cluster
from repro.obs import (
    TraceRecorder,
    analyze_job,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.query.predicates import Overlap
from repro.query.query import Query

N_PER_RELATION = 400
SPACE_SIDE = 4_800.0
SEED = 11

OUTPUT_DIRS = {
    "cascade": "two-way-cascade/output",
    "all-rep": "all-replicate/output",
    "c-rep": "controlled-replicate/output",
    "c-rep-l": "controlled-replicate-limit/output",
}


@pytest.fixture(scope="module")
def workload():
    return synthetic_chain(
        N_PER_RELATION, SPACE_SIDE, names=("R1", "R2", "R3"), seed=SEED
    )


def _run(workload, algorithm_name, recorder=None):
    query = Query.chain(["R1", "R2", "R3"], Overlap())
    grid = derive_grid(workload.datasets)
    kwargs = {"recorder": recorder} if recorder is not None else {}
    cluster = Cluster(**kwargs)
    algorithm = make_algorithm(algorithm_name, query=query, d_max=workload.d_max)
    result = algorithm.run(query, workload.datasets, grid, cluster)
    snapshot = {
        path: tuple(cluster.dfs.read_file(path))
        for path in cluster.dfs.resolve(OUTPUT_DIRS[algorithm_name])
    }
    return snapshot, result


@pytest.fixture(scope="module")
def runs(workload):
    """Per algorithm: an untraced run and a traced run (plus its recorder)."""
    out = {}
    for name in ALGORITHMS:
        untraced_snapshot, untraced = _run(workload, name)
        recorder = TraceRecorder()
        traced_snapshot, traced = _run(workload, name, recorder=recorder)
        out[name] = (untraced_snapshot, untraced, traced_snapshot, traced, recorder)
    return out


@pytest.mark.parametrize("algorithm_name", ALGORITHMS)
def test_traced_run_is_byte_identical(runs, algorithm_name):
    untraced_snapshot, untraced, traced_snapshot, traced, __ = runs[algorithm_name]
    # Part files: same names, byte-identical lines.
    assert traced_snapshot == untraced_snapshot
    assert traced.tuples == untraced.tuples
    # Per-job: every counter and the simulated seconds, job by job.
    assert len(traced.workflow.job_results) == len(untraced.workflow.job_results)
    for t, u in zip(traced.workflow.job_results, untraced.workflow.job_results):
        assert t.job_name == u.job_name
        assert t.counters.as_dict() == u.counters.as_dict()
        assert t.simulated_seconds == u.simulated_seconds
        assert t.output_records == u.output_records
    assert traced.stats.simulated_seconds == untraced.stats.simulated_seconds
    assert traced.stats.shuffled_records == untraced.stats.shuffled_records


@pytest.mark.parametrize("algorithm_name", ALGORITHMS)
def test_emitted_trace_validates(runs, algorithm_name):
    *__, recorder = runs[algorithm_name]
    assert recorder.spans  # the run actually recorded something
    trace = to_chrome_trace(recorder, process_name=algorithm_name)
    assert validate_chrome_trace(trace) == []
    json.dumps(trace)  # serialisable end to end


@pytest.mark.parametrize("algorithm_name", ALGORITHMS)
def test_trace_covers_every_job(runs, algorithm_name):
    *__, traced, recorder = runs[algorithm_name]
    job_spans = {s.name for s in recorder.spans if s.cat == "job"}
    assert job_spans == {
        f"job:{r.job_name}" for r in traced.workflow.job_results
    }


@pytest.mark.parametrize("algorithm_name", ALGORITHMS)
def test_reducer_histogram_sums_to_counter(runs, algorithm_name):
    *__, traced, __rec = runs[algorithm_name]
    saw_reduce_job = False
    for job_result in traced.workflow.job_results:
        report = analyze_job(job_result)
        assert report.total_reduce_records == job_result.counters.engine(
            C.REDUCE_INPUT_RECORDS
        )
        if report.reducer_records:
            saw_reduce_job = True
    assert saw_reduce_job  # every algorithm reduces somewhere


@pytest.mark.parametrize("algorithm_name", ALGORITHMS)
def test_golden_output_is_nonempty(runs, algorithm_name):
    """Guard the guard: empty output would make identity checks vacuous."""
    untraced_snapshot, untraced, *__ = runs[algorithm_name]
    assert untraced.tuples
    assert any(lines for lines in untraced_snapshot.values())
