"""Unit tests for the span/event recorder core (repro.obs.trace)."""

import time

from repro.obs.trace import _NULL_SPAN, NullRecorder, Span, TraceRecorder


class TestSpan:
    def test_duration(self):
        span = Span(name="s", cat="c", track="t", start_s=1.0, end_s=3.5)
        assert span.duration_s == 2.5

    def test_set_attaches_args(self):
        span = Span(name="s", cat="c", track="t")
        span.set("records", 7)
        span.set("bytes", 140)
        assert span.args == {"records": 7, "bytes": 140}


class TestNullRecorder:
    def test_disabled(self):
        assert NullRecorder().enabled is False

    def test_span_returns_shared_singleton(self):
        rec = NullRecorder()
        assert rec.span("a") is rec.span("b", cat="x", track="y") is _NULL_SPAN

    def test_span_context_is_noop(self):
        rec = NullRecorder()
        with rec.span("work", cat="phase", track="engine") as sp:
            sp.set("key", "value")  # swallowed, no state anywhere

    def test_add_span_and_instant_are_noops(self):
        rec = NullRecorder()
        assert rec.add_span("t", "c", "tr", start=0.0, end=1.0) is None
        assert rec.instant("marker") is None
        # No collection attributes exist to accumulate anything into.
        assert not hasattr(rec, "spans")
        assert not hasattr(rec, "instants")


class TestTraceRecorder:
    def test_enabled(self):
        assert TraceRecorder().enabled is True

    def test_span_records_interval_and_args(self):
        rec = TraceRecorder()
        with rec.span("work", cat="phase", track="engine") as sp:
            sp.set("records", 3)
        (span,) = rec.spans
        assert span.name == "work"
        assert span.cat == "phase"
        assert span.track == "engine"
        assert span.args == {"records": 3}
        assert 0.0 <= span.start_s <= span.end_s

    def test_nested_spans_close_child_first(self):
        rec = TraceRecorder()
        with rec.span("parent") as outer:
            with rec.span("child"):
                pass
        assert [s.name for s in rec.spans] == ["child", "parent"]
        child, parent = rec.spans
        assert outer is parent
        assert parent.start_s <= child.start_s
        assert child.end_s <= parent.end_s

    def test_now_is_epoch_relative_and_monotonic(self):
        rec = TraceRecorder()
        a = rec.now()
        b = rec.now()
        assert 0.0 <= a <= b

    def test_add_span_converts_raw_stamps_to_epoch(self):
        rec = TraceRecorder()
        t0 = time.perf_counter()
        rec.add_span("task", cat="task", track="map tasks", start=t0, end=t0 + 1.5)
        (span,) = rec.spans
        assert abs(span.start_s - (t0 - rec.epoch)) < 1e-9
        assert abs(span.duration_s - 1.5) < 1e-9

    def test_add_span_copies_args(self):
        rec = TraceRecorder()
        args = {"task": 0}
        rec.add_span("t", "c", "tr", start=rec.epoch, end=rec.epoch + 1, args=args)
        args["task"] = 99
        assert rec.spans[0].args == {"task": 0}

    def test_instant_zero_duration(self):
        rec = TraceRecorder()
        rec.instant("algorithm:c-rep", cat="experiment", track="workflow")
        (inst,) = rec.instants
        assert inst.start_s == inst.end_s
        assert inst.track == "workflow"
        assert not rec.spans

    def test_tracks_in_first_appearance_order(self):
        rec = TraceRecorder()
        rec.add_span("b", "c", "beta", start=rec.epoch + 2, end=rec.epoch + 3)
        rec.add_span("a", "c", "alpha", start=rec.epoch + 0, end=rec.epoch + 1)
        rec.instant("i", track="gamma")  # fires at now(), between the two
        # Ordered by earliest start, not by append order.
        assert rec.tracks() == ["alpha", "gamma", "beta"]
