"""Golden test: the deep observability plane observes, never changes.

PR-level acceptance for the ledger/profiler/counter-timeline stack:
with a live :class:`~repro.obs.trace.TraceRecorder`, a
:class:`~repro.obs.ledger.RunLedger` and a
:class:`~repro.obs.profile.TaskProfiler` all attached at once, every
algorithm's part files, counters and simulated seconds are
byte-identical to a bare run — on the serial, thread and process
executors alike.  The same runs feed the consistency checks: the
emitted trace (spans + counter tracks) passes the extended validator,
and replaying the ledger reconstructs the engine's attempt/failure/
spill/speculation telemetry exactly.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.common import derive_grid
from repro.experiments.workloads import synthetic_chain
from repro.joins.registry import ALGORITHMS, make_algorithm
from repro.mapreduce.counters import C
from repro.mapreduce.engine import Cluster
from repro.mapreduce.faults import FaultPlan, RetryPolicy
from repro.obs import (
    LedgerRun,
    MemorySink,
    RunLedger,
    TaskProfiler,
    TraceRecorder,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.query.predicates import Overlap
from repro.query.query import Query

N_PER_RELATION = 400
SPACE_SIDE = 4_800.0
SEED = 11
EXECUTORS = ("serial", "thread", "process")

OUTPUT_DIRS = {
    "cascade": "two-way-cascade/output",
    "all-rep": "all-replicate/output",
    "c-rep": "controlled-replicate/output",
    "c-rep-l": "controlled-replicate-limit/output",
}


@pytest.fixture(scope="module")
def workload():
    return synthetic_chain(
        N_PER_RELATION, SPACE_SIDE, names=("R1", "R2", "R3"), seed=SEED
    )


def _run(workload, algorithm_name, executor="serial", deep=False):
    query = Query.chain(["R1", "R2", "R3"], Overlap())
    grid = derive_grid(workload.datasets)
    obs = {}
    kwargs = {"executor": executor, "num_workers": 2}
    if deep:
        obs = {
            "recorder": TraceRecorder(),
            "ledger": RunLedger(MemorySink()),
            "profiler": TaskProfiler(),
        }
        kwargs.update(obs)
    cluster = Cluster(**kwargs)
    algorithm = make_algorithm(algorithm_name, query=query, d_max=workload.d_max)
    result = algorithm.run(query, workload.datasets, grid, cluster)
    snapshot = {
        path: tuple(cluster.dfs.read_file(path))
        for path in cluster.dfs.resolve(OUTPUT_DIRS[algorithm_name])
    }
    return snapshot, result, obs


@pytest.fixture(scope="module")
def bare_runs(workload):
    """One bare (unobserved, serial) reference run per algorithm."""
    return {name: _run(workload, name) for name in ALGORITHMS}


@pytest.fixture(scope="module")
def deep_runs(workload):
    """Fully-observed runs: every algorithm on every executor."""
    return {
        (name, executor): _run(workload, name, executor=executor, deep=True)
        for name in ALGORITHMS
        for executor in EXECUTORS
    }


@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("algorithm_name", ALGORITHMS)
def test_deep_observed_run_is_byte_identical(
    bare_runs, deep_runs, algorithm_name, executor
):
    bare_snapshot, bare, __ = bare_runs[algorithm_name]
    deep_snapshot, deep, __obs = deep_runs[(algorithm_name, executor)]
    assert deep_snapshot == bare_snapshot
    assert deep.tuples == bare.tuples
    assert len(deep.workflow.job_results) == len(bare.workflow.job_results)
    for d, b in zip(deep.workflow.job_results, bare.workflow.job_results):
        assert d.job_name == b.job_name
        assert d.counters.as_dict() == b.counters.as_dict()
        assert d.simulated_seconds == b.simulated_seconds
        assert d.output_records == b.output_records
    assert deep.stats.simulated_seconds == bare.stats.simulated_seconds


@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("algorithm_name", ALGORITHMS)
def test_trace_with_counter_tracks_validates(deep_runs, algorithm_name, executor):
    *__, obs = deep_runs[(algorithm_name, executor)]
    recorder = obs["recorder"]
    assert recorder.counters  # the engine sampled counter timelines
    trace = to_chrome_trace(recorder, process_name=algorithm_name)
    assert validate_chrome_trace(trace) == []
    counter_names = {
        e["name"] for e in trace["traceEvents"] if e["ph"] == "C"
    }
    assert "worker occupancy" in counter_names
    assert any(name.startswith("in-flight map tasks") for name in counter_names)
    json.dumps(trace)


@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("algorithm_name", ALGORITHMS)
def test_ledger_brackets_every_job(deep_runs, algorithm_name, executor):
    __, result, obs = deep_runs[(algorithm_name, executor)]
    run = LedgerRun.from_events(obs["ledger"].sink.events)
    assert run.manifest is not None
    assert run.manifest["executor"] == executor
    ledgered = {j.name for j in run.jobs}
    assert ledgered == {r.job_name for r in result.workflow.job_results}
    for job in run.jobs:
        assert job.started and job.committed
        engine_result = result.workflow.job(job.name)
        assert job.simulated_seconds == engine_result.simulated_seconds
        assert job.counters == engine_result.counters.as_dict()


@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("algorithm_name", ALGORITHMS)
def test_profiler_covered_both_phases(deep_runs, algorithm_name, executor):
    *__, obs = deep_runs[(algorithm_name, executor)]
    profiler = obs["profiler"]
    phases = {phase for phase, __ in profiler.keys()}
    assert "map" in phases and "reduce" in phases
    assert profiler.collapsed_stacks()  # flamegraph input is non-empty


@pytest.mark.parametrize("executor", EXECUTORS)
def test_ledger_replay_reconciles_recovery_telemetry(workload, executor):
    """Faults + budget + retries: replay counts == engine counters."""
    query = Query.chain(["R1", "R2", "R3"], Overlap())
    grid = derive_grid(workload.datasets)
    plan = (
        FaultPlan()
        .fail_task("map", 0, job="controlled-replicate-mark")
        .corrupt_result("reduce", 1, job="controlled-replicate-join")
    )
    sink = MemorySink()
    cluster = Cluster(
        executor=executor,
        num_workers=2,
        ledger=RunLedger(sink),
        fault_plan=plan,
        retry=RetryPolicy(max_attempts=3),
        memory_budget=64 * 1024,
    )
    algorithm = make_algorithm("c-rep", query=query, d_max=workload.d_max)
    result = algorithm.run(query, workload.datasets, grid, cluster)
    run = LedgerRun.from_events(sink.events)
    eng = result.workflow.counters.engine
    assert run.total_attempts == eng(C.TASK_ATTEMPTS)
    assert run.total_failures == eng(C.TASK_FAILURES) == 2
    assert sum(j.spilled_records for j in run.jobs) == eng(C.SPILLED_RECORDS)
    assert sum(j.spill_bytes for j in run.jobs) == eng(C.SPILL_BYTES)
    assert sum(j.speculative_launches for j in run.jobs) == eng(
        C.SPECULATIVE_LAUNCHES
    )
    assert sum(j.skipped_records for j in run.jobs) == eng(C.SKIPPED_RECORDS)


def test_golden_output_is_nonempty(bare_runs):
    """Guard the guard: empty output would make identity checks vacuous."""
    for name in ALGORITHMS:
        snapshot, result, __ = bare_runs[name]
        assert result.tuples
        assert any(lines for lines in snapshot.values())
