"""Tests for the benchmark trend table and its regression gate."""

import json

import pytest

from repro.cli import main
from repro.errors import ExperimentError
from repro.obs.bench_history import (
    find_regressions,
    load_bench_file,
    load_series,
    render_history,
)


def _bench_json(path, datetime, means):
    data = {
        "datetime": datetime,
        "benchmarks": [
            {
                "fullname": name,
                "name": name.split("::")[-1],
                "stats": {"mean": mean},
            }
            for name, mean in means.items()
        ],
    }
    path.write_text(json.dumps(data))
    return str(path)


class TestLoadBenchFile:
    def test_parses_means_by_fullname(self, tmp_path):
        p = _bench_json(
            tmp_path / "BENCH_a.json",
            "2026-08-01T00:00:00+00:00",
            {"tests/bench.py::test_x": 0.5},
        )
        f = load_bench_file(p)
        assert f.means == {"tests/bench.py::test_x": 0.5}
        assert f.label == "BENCH_a.json"
        assert f.datetime.startswith("2026-08-01")

    def test_rejects_non_benchmark_json(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text('{"no": "benchmarks"}')
        with pytest.raises(ExperimentError, match="missing 'benchmarks'"):
            load_bench_file(str(p))

    def test_rejects_unreadable_file(self, tmp_path):
        p = tmp_path / "garbage.json"
        p.write_text("{not json")
        with pytest.raises(ExperimentError, match="cannot read"):
            load_bench_file(str(p))


class TestLoadSeries:
    def test_orders_by_datetime_not_argument_order(self, tmp_path):
        newer = _bench_json(
            tmp_path / "BENCH_new.json", "2026-08-07T00:00:00+00:00", {"t": 1.0}
        )
        older = _bench_json(
            tmp_path / "BENCH_old.json", "2026-08-01T00:00:00+00:00", {"t": 2.0}
        )
        series = load_series([newer, older])
        assert [f.label for f in series] == ["BENCH_old.json", "BENCH_new.json"]


class TestFindRegressions:
    def test_gate_bites_past_threshold(self, tmp_path):
        older = load_bench_file(_bench_json(
            tmp_path / "a.json", "1", {"t::fast": 1.0, "t::slow": 1.0}
        ))
        newer = load_bench_file(_bench_json(
            tmp_path / "b.json", "2", {"t::fast": 1.05, "t::slow": 1.25}
        ))
        regs = find_regressions(older, newer, threshold=0.10)
        assert [r.name for r in regs] == ["t::slow"]
        assert regs[0].ratio == pytest.approx(1.25)

    def test_below_threshold_is_not_a_regression(self, tmp_path):
        older = load_bench_file(_bench_json(tmp_path / "a.json", "1", {"t": 1.0}))
        newer = load_bench_file(_bench_json(tmp_path / "b.json", "2", {"t": 1.09}))
        assert find_regressions(older, newer, threshold=0.10) == []

    def test_disjoint_suites_compare_clean(self, tmp_path):
        older = load_bench_file(_bench_json(tmp_path / "a.json", "1", {"x": 1.0}))
        newer = load_bench_file(_bench_json(tmp_path / "b.json", "2", {"y": 9.0}))
        assert find_regressions(older, newer) == []


class TestRenderHistory:
    def test_table_and_regression_section(self, tmp_path):
        series = load_series([
            _bench_json(tmp_path / "a.json", "1", {"t.py::test_q": 1.0}),
            _bench_json(tmp_path / "b.json", "2", {"t.py::test_q": 2.0}),
        ])
        table, regs = render_history(series)
        assert len(regs) == 1
        assert "test_q" in table
        assert "+100.0% !!" in table
        assert "REGRESSIONS" in table and "2.00x" in table

    def test_clean_series_reports_none(self, tmp_path):
        series = load_series([
            _bench_json(tmp_path / "a.json", "1", {"t::q": 1.0}),
            _bench_json(tmp_path / "b.json", "2", {"t::q": 1.01}),
        ])
        table, regs = render_history(series)
        assert regs == []
        assert "no regressions > 10%" in table

    def test_single_file_needs_no_pair(self, tmp_path):
        series = load_series([_bench_json(tmp_path / "a.json", "1", {"t": 1.0})])
        table, regs = render_history(series)
        assert regs == []
        assert "need at least two recordings" in table

    def test_empty_series(self):
        table, regs = render_history([])
        assert table == "(no benchmark files)" and regs == []


class TestCli:
    def test_exit_zero_when_clean(self, tmp_path, capsys):
        a = _bench_json(tmp_path / "BENCH_a.json", "1", {"t": 1.0})
        b = _bench_json(tmp_path / "BENCH_b.json", "2", {"t": 1.0})
        assert main(["bench-history", a, b]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_exit_nonzero_on_regression(self, tmp_path, capsys):
        a = _bench_json(tmp_path / "BENCH_a.json", "1", {"t": 1.0})
        b = _bench_json(tmp_path / "BENCH_b.json", "2", {"t": 1.5})
        assert main(["bench-history", a, b]) == 1
        assert "REGRESSIONS" in capsys.readouterr().out

    def test_exit_two_without_files(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["bench-history"]) == 2
        assert "no BENCH_*.json" in capsys.readouterr().err

    def test_defaults_to_bench_glob(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        _bench_json(tmp_path / "BENCH_a.json", "1", {"t": 1.0})
        _bench_json(tmp_path / "BENCH_b.json", "2", {"t": 2.0})
        assert main(["bench-history"]) == 1

    def test_threshold_flag(self, tmp_path):
        a = _bench_json(tmp_path / "BENCH_a.json", "1", {"t": 1.0})
        b = _bench_json(tmp_path / "BENCH_b.json", "2", {"t": 1.5})
        assert main(["bench-history", "--threshold", "0.6", a, b]) == 0

    def test_bad_file_is_a_cli_error(self, tmp_path, capsys):
        p = tmp_path / "BENCH_bad.json"
        p.write_text("{}")
        assert main(["bench-history", str(p)]) == 2
        assert "error:" in capsys.readouterr().err


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main([__file__, "-q"]))
