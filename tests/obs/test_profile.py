"""Tests for per-task profiling: capture, merge, hotspots, flamegraphs."""

import pytest

from repro.mapreduce.dfs import InMemoryDFS
from repro.mapreduce.engine import Cluster
from repro.mapreduce.job import MapReduceJob, hash_partitioner
from repro.obs.profile import (
    TaskProfiler,
    merge_profile,
    render_profile_dashboard,
    run_profiled,
    write_flamegraph,
)

FUNC_A = ("mod.py", 10, "alpha")
FUNC_B = ("mod.py", 20, "beta")
FUNC_MAIN = ("mod.py", 1, "main")


def _stats(func, cc=1, nc=1, tt=0.001, ct=0.002, callers=None):
    return {func: (cc, nc, tt, ct, dict(callers or {}))}


class TestRunProfiled:
    def test_returns_value_and_stats(self):
        def work(n):
            return sum(range(n))

        value, stats = run_profiled(work, 1000)
        assert value == sum(range(1000))
        assert isinstance(stats, dict) and stats
        labels = {name for (__, __, name) in stats}
        assert "work" in labels

    def test_stats_survive_exceptions(self):
        with pytest.raises(ValueError):
            run_profiled(lambda: (_ for _ in ()).throw(ValueError("boom")))


class TestMergeProfile:
    def test_element_wise_sums(self):
        into = _stats(FUNC_A, cc=1, nc=2, tt=0.5, ct=1.0,
                      callers={FUNC_MAIN: (1, 2, 0.5, 1.0)})
        merge_profile(
            into,
            _stats(FUNC_A, cc=3, nc=4, tt=0.25, ct=0.5,
                   callers={FUNC_MAIN: (3, 4, 0.25, 0.5)}),
        )
        cc, nc, tt, ct, callers = into[FUNC_A]
        assert (cc, nc) == (4, 6)
        assert tt == pytest.approx(0.75)
        assert ct == pytest.approx(1.5)
        assert callers[FUNC_MAIN] == (4, 6, 0.75, 1.5)

    def test_disjoint_functions_and_new_callers(self):
        into = _stats(FUNC_A)
        merge_profile(into, _stats(FUNC_B, callers={FUNC_A: (1, 1, 0.1, 0.2)}))
        assert set(into) == {FUNC_A, FUNC_B}
        assert into[FUNC_B][4][FUNC_A] == (1, 1, 0.1, 0.2)


class TestTaskProfiler:
    def test_hotspots_ordered_by_self_time(self):
        prof = TaskProfiler()
        prof.add("map", "numpy", _stats(FUNC_A, tt=0.1, ct=0.2))
        prof.add("map", "numpy", _stats(FUNC_B, tt=0.9, ct=1.0))
        hot = prof.hotspots("map", "numpy")
        assert [h.func for h in hot] == ["mod.py:20:beta", "mod.py:10:alpha"]
        assert prof.tasks[("map", "numpy")] == 2
        assert prof.keys() == [("map", "numpy")]

    def test_collapsed_stacks_conserve_microseconds(self):
        prof = TaskProfiler()
        prof.add(
            "map",
            "numpy",
            {
                FUNC_MAIN: (1, 1, 0.001, 0.004, {}),
                FUNC_A: (2, 2, 0.003, 0.003,
                         {FUNC_MAIN: (2, 2, 0.003, 0.003)}),
            },
        )
        lines = prof.collapsed_stacks()
        total_us = sum(int(line.rsplit(" ", 1)[1]) for line in lines)
        assert total_us == 1000 + 3000  # every self-µs lands exactly once
        assert any(
            line.startswith("map [numpy];mod.py:1:main;mod.py:10:alpha ")
            for line in lines
        )

    def test_collapsed_stacks_split_across_callers(self):
        prof = TaskProfiler()
        prof.add(
            "reduce",
            "python",
            {
                FUNC_A: (4, 4, 0.004, 0.004, {
                    FUNC_MAIN: (3, 3, 0.003, 0.003),
                    FUNC_B: (1, 1, 0.001, 0.001),
                }),
            },
        )
        lines = prof.collapsed_stacks()
        by_stack = dict(line.rsplit(" ", 1) for line in lines)
        assert int(by_stack["reduce [python];mod.py:1:main;mod.py:10:alpha"]) == 3000
        assert int(by_stack["reduce [python];mod.py:20:beta;mod.py:10:alpha"]) == 1000

    def test_write_flamegraph(self, tmp_path):
        prof = TaskProfiler()
        prof.add("map", "numpy", _stats(FUNC_A, tt=0.002))
        path = tmp_path / "flame.txt"
        write_flamegraph(str(path), prof)
        lines = path.read_text().splitlines()
        assert lines == ["map [numpy];mod.py:10:alpha 2000"]


class TestRenderDashboard:
    def test_empty(self):
        text = render_profile_dashboard(TaskProfiler())
        assert "(no profiled tasks)" in text

    def test_sections_per_group(self):
        prof = TaskProfiler()
        prof.add("map", "numpy", _stats(FUNC_A, tt=0.1))
        prof.add("reduce", "numpy", _stats(FUNC_B, tt=0.2))
        text = render_profile_dashboard(prof)
        assert "-- map tasks [numpy kernel] (1 task profiled) --" in text
        assert "-- reduce tasks [numpy kernel] (1 task profiled) --" in text
        assert "mod.py:10:alpha" in text and "mod.py:20:beta" in text


class TestEngineProfiling:
    def _run(self, profiler, executor="serial"):
        def mapper(key, line, ctx):
            for word in line.split():
                ctx.emit(word, 1)

        def reducer(word, counts, ctx):
            ctx.emit(f"{word}\t{sum(counts)}")

        cluster = Cluster(
            dfs=InMemoryDFS(), profiler=profiler, executor=executor,
            num_workers=2,
        )
        cluster.dfs.write_file("in", ["a b a c", "b c d", "a"] * 10)
        result = cluster.run_job(
            MapReduceJob(
                name="wc",
                input_paths=["in"],
                output_path="out",
                mapper=mapper,
                reducer=reducer,
                num_reducers=3,
                partitioner=hash_partitioner,
            )
        )
        return cluster, result

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_profiles_both_phases_on_every_executor(self, executor):
        prof = TaskProfiler()
        cluster, __ = self._run(prof, executor=executor)
        kern = cluster.resolved_kernel
        assert prof.keys() == [("map", kern), ("reduce", kern)]
        assert prof.tasks[("map", kern)] > 0
        assert prof.tasks[("reduce", kern)] == 3
        # The task bodies themselves appear in the merged stats.
        map_labels = {h.func for h in prof.hotspots("map", kern, n=50)}
        assert any("_map_task_body" in label for label in map_labels)

    def test_profiled_run_is_byte_identical(self):
        bare_cluster, bare = self._run(None)
        prof_cluster, profiled = self._run(TaskProfiler())
        assert profiled.counters.as_dict() == bare.counters.as_dict()
        assert profiled.simulated_seconds == bare.simulated_seconds
        assert [
            prof_cluster.dfs.read_file(p)
            for p in prof_cluster.dfs.resolve("out")
        ] == [
            bare_cluster.dfs.read_file(p)
            for p in bare_cluster.dfs.resolve("out")
        ]


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main([__file__, "-q"]))
