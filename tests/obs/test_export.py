"""Tests for the Chrome trace-event exporter and metrics snapshots."""

import json

from repro.mapreduce.counters import C
from repro.mapreduce.dfs import InMemoryDFS
from repro.mapreduce.engine import Cluster
from repro.mapreduce.job import MapReduceJob, hash_partitioner
from repro.obs.export import (
    _assign_lanes,
    metrics_snapshot,
    to_chrome_trace,
    validate_chrome_trace,
    write_trace,
)
from repro.obs.trace import Span, TraceRecorder


def _span(name, track, start, end, cat="test", **args):
    return Span(
        name=name, cat=cat, track=track, start_s=start, end_s=end, args=dict(args)
    )


def _recorder(spans=(), instants=()):
    rec = TraceRecorder()
    rec.spans = list(spans)
    rec.instants = list(instants)
    return rec


class TestAssignLanes:
    def test_disjoint_spans_share_lane_zero(self):
        spans = [_span("a", "t", 0, 1), _span("b", "t", 1, 2), _span("c", "t", 3, 4)]
        assert _assign_lanes(spans) == [0, 0, 0]

    def test_nested_spans_share_a_lane(self):
        # job contains its phases: one flame stack, one Chrome thread.
        spans = [
            _span("job", "t", 0, 10),
            _span("split", "t", 1, 2),
            _span("map", "t", 2, 6),
            _span("inner", "t", 3, 5),
        ]
        assert _assign_lanes(spans) == [0, 0, 0, 0]

    def test_partial_overlap_forces_new_lane(self):
        spans = [_span("t0", "t", 0, 5), _span("t1", "t", 3, 8)]
        assert _assign_lanes(spans) == [0, 1]

    def test_parallel_tasks_fan_out_then_reuse_lanes(self):
        spans = [
            _span("t0", "t", 0, 4),
            _span("t1", "t", 1, 5),
            _span("t2", "t", 2, 6),
            _span("t3", "t", 4.5, 7),  # t0 ended: lane 0 is free again
        ]
        assert _assign_lanes(spans) == [0, 1, 2, 0]

    def test_lane_per_input_position_not_sort_position(self):
        # Result is indexed like the input even when starts are unsorted.
        spans = [_span("late", "t", 3, 8), _span("early", "t", 0, 5)]
        assert _assign_lanes(spans) == [1, 0]

    def test_empty(self):
        assert _assign_lanes([]) == []


class TestToChromeTrace:
    def test_structure_and_units(self):
        rec = _recorder(
            spans=[_span("job", "engine", 0.0, 0.5, cat="job", records=3)],
            instants=[_span("mark", "engine", 0.25, 0.25, cat="event")],
        )
        trace = to_chrome_trace(rec, process_name="unit test")
        events = trace["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
                "args": {"name": "unit test"}} in meta
        assert any(
            e["name"] == "thread_name" and e["args"]["name"] == "engine"
            for e in meta
        )
        (x,) = [e for e in events if e["ph"] == "X"]
        assert x["ts"] == 0.0 and x["dur"] == 500_000.0  # microseconds
        assert x["args"] == {"records": 3}
        (i,) = [e for e in events if e["ph"] == "i"]
        assert i["ts"] == 250_000.0 and i["s"] == "t"

    def test_single_lane_track_keeps_plain_name(self):
        rec = _recorder(spans=[_span("a", "engine", 0, 1), _span("b", "engine", 2, 3)])
        names = [
            e["args"]["name"]
            for e in to_chrome_trace(rec)["traceEvents"]
            if e["name"] == "thread_name"
        ]
        assert names == ["engine"]

    def test_parallel_track_gets_lane_suffixes(self):
        rec = _recorder(
            spans=[_span("t0", "map tasks", 0, 5), _span("t1", "map tasks", 1, 6)]
        )
        names = [
            e["args"]["name"]
            for e in to_chrome_trace(rec)["traceEvents"]
            if e["name"] == "thread_name"
        ]
        assert names == ["map tasks [0]", "map tasks [1]"]

    def test_exit_order_input_still_monotonic_per_tid(self):
        # The recorder appends a parent *after* its children (exit
        # order); the exporter must still emit parents first.
        rec = _recorder(
            spans=[_span("child", "engine", 1, 2), _span("job", "engine", 0, 10)]
        )
        trace = to_chrome_trace(rec)
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert [e["name"] for e in xs] == ["job", "child"]
        assert validate_chrome_trace(trace) == []

    def test_write_trace_round_trips(self, tmp_path):
        rec = _recorder(spans=[_span("job", "engine", 0, 1)])
        path = tmp_path / "trace.json"
        write_trace(str(path), rec, process_name="round trip")
        loaded = json.loads(path.read_text())
        assert validate_chrome_trace(loaded) == []
        assert loaded["displayTimeUnit"] == "ms"


class TestValidateChromeTrace:
    def test_rejects_non_list(self):
        assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]

    def test_flags_unsupported_phase(self):
        trace = {"traceEvents": [{"name": "b", "ph": "B", "pid": 1, "tid": 1, "ts": 0}]}
        assert any("unsupported ph" in p for p in validate_chrome_trace(trace))

    def test_flags_missing_dur_and_negative_dur(self):
        base = {"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": 0}
        assert any(
            "missing 'dur'" in p
            for p in validate_chrome_trace({"traceEvents": [dict(base)]})
        )
        assert any(
            "negative duration" in p
            for p in validate_chrome_trace({"traceEvents": [dict(base, dur=-1)]})
        )

    def test_flags_non_monotonic_starts(self):
        trace = {
            "traceEvents": [
                {"name": "b", "ph": "X", "pid": 1, "tid": 7, "ts": 5, "dur": 1},
                {"name": "a", "ph": "X", "pid": 1, "tid": 7, "ts": 0, "dur": 1},
            ]
        }
        assert any("not monotonic" in p for p in validate_chrome_trace(trace))

    def test_flags_partial_overlap_on_one_tid(self):
        trace = {
            "traceEvents": [
                {"name": "a", "ph": "X", "pid": 1, "tid": 7, "ts": 0, "dur": 5},
                {"name": "b", "ph": "X", "pid": 1, "tid": 7, "ts": 3, "dur": 5},
            ]
        }
        assert any("partially overlaps" in p for p in validate_chrome_trace(trace))

    def test_accepts_nesting_and_separate_tids(self):
        trace = {
            "traceEvents": [
                {"name": "p", "ph": "X", "pid": 1, "tid": 7, "ts": 0, "dur": 10},
                {"name": "c", "ph": "X", "pid": 1, "tid": 7, "ts": 2, "dur": 3},
                {"name": "q", "ph": "X", "pid": 1, "tid": 8, "ts": 1, "dur": 20},
            ]
        }
        assert validate_chrome_trace(trace) == []


def _counter_event(tid=9, ts=0, args="default", name="gauge"):
    ev = {"name": name, "cat": "counter", "ph": "C", "ts": ts, "pid": 1, "tid": tid}
    ev["args"] = {"value": 1} if args == "default" else args
    return ev


class TestValidateCounterEvents:
    def test_accepts_well_formed_counter_track(self):
        trace = {
            "traceEvents": [
                _counter_event(ts=0),
                _counter_event(ts=5),
                _counter_event(ts=5),  # repeated stamp is still monotonic
            ]
        }
        assert validate_chrome_trace(trace) == []

    def test_flags_missing_and_empty_args(self):
        for bad in (None, {}):
            ev = _counter_event(args=bad)
            if bad is None:
                del ev["args"]
            problems = validate_chrome_trace({"traceEvents": [ev]})
            assert any("counter event missing 'args'" in p for p in problems)

    def test_flags_non_numeric_values(self):
        trace = {"traceEvents": [_counter_event(args={"value": "three"})]}
        assert any(
            "counter values must be numeric" in p
            for p in validate_chrome_trace(trace)
        )

    def test_flags_non_monotonic_counter_timestamps(self):
        trace = {"traceEvents": [_counter_event(ts=5), _counter_event(ts=2)]}
        assert any(
            "counter timestamps not monotonic" in p
            for p in validate_chrome_trace(trace)
        )

    def test_flags_counter_tid_colliding_with_span_lane(self):
        trace = {
            "traceEvents": [
                {"name": "s", "ph": "X", "pid": 1, "tid": 4, "ts": 0, "dur": 5},
                _counter_event(tid=4),
            ]
        }
        assert any(
            "counter track collides with a span lane" in p
            for p in validate_chrome_trace(trace)
        )


class TestMixedSpanAndCounterLayout:
    def _mixed_recorder(self):
        # Two parallel spans (forces two lanes on one track), a second
        # track, and two counter timelines — one gauge, one running sum.
        rec = _recorder(
            spans=[
                _span("t0", "map tasks", 0, 5),
                _span("t1", "map tasks", 1, 6),
                _span("job", "engine", 0, 8, cat="job"),
            ]
        )
        rec.counter_sample("in-flight map tasks", rec.epoch + 0.5, 2)
        rec.counter_sample("in-flight map tasks", rec.epoch + 6.0, 0)
        rec.counter_add("shuffle bytes (cumulative)", rec.epoch + 5.0, 100)
        rec.counter_add("shuffle bytes (cumulative)", rec.epoch + 6.0, 50)
        return rec

    def test_counter_tids_are_disjoint_from_span_lanes(self):
        trace = to_chrome_trace(self._mixed_recorder(), process_name="mixed")
        events = trace["traceEvents"]
        span_tids = {e["tid"] for e in events if e["ph"] == "X"}
        counter_tids = {e["tid"] for e in events if e["ph"] == "C"}
        assert span_tids and counter_tids
        assert span_tids.isdisjoint(counter_tids)
        # Counter lanes start strictly after every span lane.
        assert min(counter_tids) > max(span_tids)

    def test_mixed_trace_validates_and_serialises(self):
        trace = to_chrome_trace(self._mixed_recorder())
        assert validate_chrome_trace(trace) == []
        json.dumps(trace)

    def test_counter_tracks_are_named_and_summed(self):
        trace = to_chrome_trace(self._mixed_recorder())
        events = trace["traceEvents"]
        names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "counter: in-flight map tasks" in names
        assert "counter: shuffle bytes (cumulative)" in names
        totals = [
            e["args"]["value"]
            for e in events
            if e["ph"] == "C" and e["name"] == "shuffle bytes (cumulative)"
        ]
        assert totals == [100, 150]  # counter_add accumulates


# ----------------------------------------------------------------------
# Against a real engine run
# ----------------------------------------------------------------------
def _word_count_result(recorder):
    def mapper(key, line, ctx):
        for word in line.split():
            ctx.emit(word, 1)

    def reducer(word, counts, ctx):
        ctx.emit(f"{word}\t{sum(counts)}")

    cluster = Cluster(dfs=InMemoryDFS(), recorder=recorder)
    cluster.dfs.write_file("in", ["a b a c", "b c d", "a"] * 20)
    result = cluster.run_job(
        MapReduceJob(
            name="wc",
            input_paths=["in"],
            output_path="out",
            mapper=mapper,
            reducer=reducer,
            num_reducers=3,
            partitioner=hash_partitioner,
        )
    )
    return cluster, result


class TestRealRun:
    def test_engine_trace_validates(self):
        rec = TraceRecorder()
        _word_count_result(rec)
        trace = to_chrome_trace(rec, process_name="wc")
        assert validate_chrome_trace(trace) == []
        # job + split/map/shuffle/reduce/write on the engine track, plus
        # one retro-reported span per map and reduce task.
        names = {s.name for s in rec.spans}
        assert {"job:wc", "split", "map", "shuffle", "reduce", "write"} <= names
        assert "reduce-0" in names
        assert json.dumps(trace)  # JSON-serialisable end to end

    def test_metrics_snapshot_shape(self):
        rec = TraceRecorder()
        __, result = _word_count_result(rec)
        snap = metrics_snapshot({"wc-run": [result]})
        assert snap["version"] == 1
        run = snap["runs"]["wc-run"]
        assert run["simulated_seconds"] == result.simulated_seconds
        (job,) = run["jobs"]
        assert job["job"] == "wc"
        assert job["counters"] == result.counters.as_dict()
        assert job["reduce_tasks"]["count"] == 3
        assert sum(job["reduce_tasks"]["input_records"]) == result.counters.engine(
            C.REDUCE_INPUT_RECORDS
        )
        assert json.dumps(snap)  # JSON-serialisable
