"""Tests for the critical-path analyzer and its speedup attribution."""

import pytest

from repro.mapreduce.dfs import InMemoryDFS
from repro.mapreduce.engine import Cluster
from repro.mapreduce.job import MapReduceJob
from repro.obs.critical_path import (
    WorkflowCriticalPath,
    _parallel_segment,
    _serial_segment,
    analyze_critical_path,
    job_critical_path,
)


class TestSerialSegment:
    def test_whole_duration_is_critical(self):
        seg = _serial_segment("shuffle", 3.0)
        assert not seg.parallel
        assert seg.duration_s == 3.0
        assert seg.savings_s == 1.0  # capped at the 1s hypothetical

    def test_short_phase_caps_at_duration(self):
        seg = _serial_segment("split", 0.25)
        assert seg.savings_s == 0.25

    def test_describe(self):
        assert _serial_segment("write", 2.0).describe() == "write 2.00s"


class TestParallelSegment:
    def test_critical_task_is_latest_finisher(self):
        seg = _parallel_segment("map", 0.0, [(0.0, 2.0), (0.5, 5.0), (1.0, 3.0)])
        assert seg.parallel
        assert seg.critical_task == 1
        assert seg.duration_s == 5.0  # makespan from first start to last end
        assert seg.critical_task_duration_s == 4.5
        # slack: (5-2) + (5-4.5) + (5-2) = 6.5
        assert seg.slack_s == pytest.approx(6.5)
        assert "(task 1)" in seg.describe()

    def test_savings_capped_by_second_latest_finisher(self):
        # Critical ends at 5.0; runner-up at 4.6.  A full 1s speedup
        # would land at 4.0, but the runner-up becomes the straggler.
        seg = _parallel_segment("map", 0.0, [(0.0, 4.6), (0.0, 5.0)])
        assert seg.savings_s == pytest.approx(0.4)

    def test_savings_full_second_when_gap_is_wide(self):
        seg = _parallel_segment("reduce", 0.0, [(0.0, 1.0), (0.0, 10.0)])
        assert seg.savings_s == pytest.approx(1.0)

    def test_single_task_savings_capped_by_duration(self):
        seg = _parallel_segment("map", 0.0, [(1.0, 1.4)])
        assert seg.critical_task == 0
        assert seg.savings_s == pytest.approx(0.4)
        assert seg.slack_s == 0.0

    def test_empty_intervals_degrade_to_serial(self):
        seg = _parallel_segment("map", 0.7, [])
        assert not seg.parallel
        assert seg.duration_s == 0.7
        assert seg.savings_s == pytest.approx(0.7)


def _run_job(mapper=None, reducer="default", inputs=None, name="job"):
    def default_mapper(key, line, ctx):
        ctx.emit(0, line)

    def default_reducer(key, values, ctx):
        ctx.emit(f"{key}\t{len(values)}")

    cluster = Cluster(dfs=InMemoryDFS())
    cluster.dfs.write_file("in", inputs if inputs is not None else ["a", "b", "c"])
    return cluster.run_job(
        MapReduceJob(
            name=name,
            input_paths=["in"],
            output_path=f"{name}/out",
            mapper=mapper or default_mapper,
            reducer=default_reducer if reducer == "default" else reducer,
            num_reducers=2,
        )
    )


class TestJobCriticalPath:
    def test_phases_in_order(self):
        path = job_critical_path(_run_job())
        assert [seg.phase for seg in path.segments] == [
            "split", "map", "shuffle", "reduce", "write",
        ]
        assert path.total_s > 0
        assert path.best is not None
        assert "->" in path.describe()

    def test_map_only_job_has_no_reduce_segments(self):
        path = job_critical_path(_run_job(reducer=None, name="mo"))
        assert [seg.phase for seg in path.segments] == ["split", "map", "write"]

    def test_single_task_job(self):
        result = _run_job(inputs=["only one line"], name="tiny")
        path = job_critical_path(result)
        map_seg = next(s for s in path.segments if s.phase == "map")
        assert map_seg.critical_task == 0
        assert map_seg.slack_s == 0.0


class TestWorkflowCriticalPath:
    def test_attribution_line_names_best_target(self):
        wf = analyze_critical_path([_run_job(name="a"), _run_job(name="b")])
        assert len(wf.jobs) == 2
        line = wf.attribution_line()
        assert line.startswith("1s-speedup-where-it-matters: ")
        assert "of job " in line and "critical path" in line

    def test_empty_chain(self):
        wf = analyze_critical_path([])
        assert wf.total_s == 0.0
        assert wf.best is None
        assert wf.attribution_line() == "critical path: (no measured phases)"

    def test_resumed_jobs_are_excluded(self):
        result = _run_job(name="done")
        resumed = type(result)(
            **{**result.__dict__, "resumed": True}
        )
        wf = analyze_critical_path([resumed])
        assert wf.jobs == ()

    def test_best_picks_largest_savings(self):
        from repro.obs.critical_path import JobCriticalPath, PhaseSegment

        wf = WorkflowCriticalPath(
            jobs=(
                JobCriticalPath("a", (PhaseSegment("map", 2.0, savings_s=0.2),)),
                JobCriticalPath(
                    "b",
                    (PhaseSegment("reduce", 3.0, critical_task=4, savings_s=0.9),),
                ),
            )
        )
        name, seg = wf.best
        assert name == "b" and seg.critical_task == 4
        assert "reduce task 4 of job 'b'" in wf.attribution_line()


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main([__file__, "-q"]))
