"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.obs import validate_chrome_trace


class TestJoinCommand:
    def test_basic_run(self, capsys):
        code = main([
            "join", "--algorithm", "c-rep", "--n", "200", "--space", "1000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "output tuples:" in out
        assert "simulated time:" in out
        assert "rectangles marked:" in out

    def test_range_join(self, capsys):
        code = main([
            "join", "--algorithm", "c-rep-l", "--n", "150",
            "--space", "1000", "--range-d", "30",
        ])
        assert code == 0
        assert "Ra(30)" in capsys.readouterr().out

    def test_four_relations(self, capsys):
        code = main([
            "join", "--algorithm", "cascade", "--n", "100",
            "--space", "1000", "--relations", "4",
        ])
        assert code == 0
        assert "R4" in capsys.readouterr().out

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            main(["join", "--algorithm", "nope"])


class TestTableCommands:
    def test_single_table(self, capsys):
        code = main(["table6", "--scale", "0.05"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 6" in out
        assert "time c-rep" in out

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "report.txt"
        code = main(["table9", "--scale", "0.05", "--output", str(target)])
        assert code == 0
        assert target.read_text().startswith("Table 9")

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestReportCommand:
    def test_writes_markdown(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(["report", "--scale", "0.05", "--output", "EXP.md"])
        assert code == 0
        text = (tmp_path / "EXP.md").read_text()
        assert "# EXPERIMENTS" in text
        for n in range(2, 10):
            assert f"Table {n}" in text
        assert "wrote EXP.md" in capsys.readouterr().out


class TestObsFlags:
    def test_join_writes_trace_and_metrics(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        code = main([
            "join", "--algorithm", "c-rep", "--n", "150", "--space", "1000",
            "--trace", str(trace_path), "--metrics", str(metrics_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert f"wrote trace {trace_path}" in out
        assert f"wrote metrics {metrics_path}" in out
        trace = json.loads(trace_path.read_text())
        assert validate_chrome_trace(trace) == []
        metrics = json.loads(metrics_path.read_text())
        assert metrics["version"] == 1
        assert "c-rep" in metrics["runs"]
        assert metrics["runs"]["c-rep"]["jobs"]

    def test_join_verbose_prints_dashboard_and_skew(self, capsys):
        code = main([
            "join", "--algorithm", "c-rep", "--n", "150", "--space", "1000",
            "--verbose",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "reduce skew (max/mean):" in out
        assert "== c-rep:" in out
        assert "reduce input:" in out

    def test_table_writes_trace_and_metrics(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        code = main([
            "table6", "--scale", "0.05",
            "--trace", str(trace_path), "--metrics", str(metrics_path),
        ])
        assert code == 0
        trace = json.loads(trace_path.read_text())
        assert validate_chrome_trace(trace) == []
        metrics = json.loads(metrics_path.read_text())
        assert "table6" in metrics["tables"]
        assert metrics["tables"]["table6"]["rows"]

    def test_table_verbose_prints_row_dashboards(self, capsys):
        code = main(["table6", "--scale", "0.05", "--verbose"])
        assert code == 0
        out = capsys.readouterr().out
        assert "### Table 6 row" in out
        assert "reduce input:" in out

    def test_report_has_no_obs_flags(self):
        with pytest.raises(SystemExit):
            main(["report", "--trace", "x.json"])


class TestQueryFlag:
    def test_explicit_query(self, capsys):
        code = main([
            "join", "--algorithm", "c-rep", "--n", "150", "--space", "1000",
            "--query", "A Ov B and B Ra(40) C",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "A Ov B and B Ra(40) C" in out

    def test_bad_query_clean_error(self, capsys):
        code = main(["join", "--query", "A Near B", "--n", "10"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown predicate 'Near'" in err
        assert "Traceback" not in err


class TestFaultFlags:
    def _plan(self, tmp_path, plan):
        path = tmp_path / "plan.json"
        plan.dump(str(path))
        return str(path)

    def test_fault_plan_absorbed_within_max_attempts(self, tmp_path, capsys):
        from repro.mapreduce.faults import FaultPlan

        plan = FaultPlan().fail_task("map", 0, attempt=0, job=None)
        code = main([
            "join", "--algorithm", "c-rep", "--n", "200", "--space", "1000",
            "--max-attempts", "2", "--fault-plan", self._plan(tmp_path, plan),
            "--verbose",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "task attempts:" in out
        assert "failures" in out
        assert "faults:" in out  # the dashboard's recovery line

    def test_fault_plan_does_not_change_simulated_time(self, tmp_path, capsys):
        from repro.mapreduce.faults import FaultPlan

        args = ["join", "--algorithm", "c-rep", "--n", "200", "--space", "1000"]
        assert main(args) == 0
        baseline = capsys.readouterr().out
        plan = FaultPlan().fail_task("reduce", 0, attempt=0, job=None)
        assert main(args + [
            "--max-attempts", "3", "--fault-plan", self._plan(tmp_path, plan),
        ]) == 0
        chaotic = capsys.readouterr().out

        def line(out, prefix):
            return next(l for l in out.splitlines() if l.startswith(prefix))

        assert line(chaotic, "simulated time:") == line(baseline, "simulated time:")
        assert line(chaotic, "output tuples:") == line(baseline, "output tuples:")

    def test_exhausted_plan_is_a_clean_error(self, tmp_path, capsys):
        from repro.mapreduce.faults import FaultPlan

        plan = FaultPlan().fail_task("map", 0, attempt=None, job=None)
        code = main([
            "join", "--algorithm", "c-rep", "--n", "100", "--space", "1000",
            "--max-attempts", "2", "--fault-plan", self._plan(tmp_path, plan),
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "failed 2 attempt(s)" in err
        assert "Traceback" not in err

    def test_resume_requires_dfs_root(self, capsys):
        code = main([
            "join", "--algorithm", "c-rep", "--n", "100", "--space", "1000",
            "--resume",
        ])
        assert code == 2
        assert "--dfs-root" in capsys.readouterr().err

    def test_speculate_flag_accepted(self, capsys):
        code = main([
            "join", "--algorithm", "c-rep", "--n", "100", "--space", "1000",
            "--speculate",
        ])
        assert code == 0

    def test_workers_fail_flag_absorbed(self, capsys):
        code = main([
            "join", "--algorithm", "c-rep", "--n", "200", "--space", "1000",
            "--workers", "4", "--max-attempts", "3",
            "--workers-fail", "w1@reduce:0,silent", "--verbose",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "workers: 1 lost" in out

    def test_workers_fail_merges_with_plan_file(self, tmp_path, capsys):
        from repro.mapreduce.faults import FaultPlan

        plan = FaultPlan().fail_task("map", 0, attempt=0, job=None)
        code = main([
            "join", "--algorithm", "c-rep", "--n", "200", "--space", "1000",
            "--workers", "4", "--max-attempts", "3",
            "--fault-plan", self._plan(tmp_path, plan),
            "--workers-fail", "w1@map:0:1", "--verbose",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "task attempts:" in out
        assert "workers:" in out

    def test_workers_fail_bad_syntax_is_clean_error(self, capsys):
        with pytest.raises(SystemExit) as err:
            main([
                "join", "--algorithm", "c-rep", "--n", "100",
                "--workers-fail", "w1-reduce-0",
            ])
        assert err.value.code == 2
        stderr = capsys.readouterr().err
        assert "NAME@PHASE:TASK" in stderr
        assert "Traceback" not in stderr

    def test_crash_then_resume_across_processes(self, tmp_path, capsys):
        """The full CLI resume story: a run crashes on job 2, a second
        invocation (fresh cluster, same --dfs-root) restores job 1 from
        the on-disk checkpoint and finishes the chain."""
        from repro.mapreduce.faults import FaultPlan

        root = str(tmp_path / "dfsroot")
        base = [
            "join", "--algorithm", "c-rep", "--n", "150", "--space", "1000",
            "--dfs-root", root,
        ]
        plan = FaultPlan().fail_task(
            "reduce", 0, attempt=None, job="controlled-replicate-join"
        )
        assert main(base + ["--fault-plan", self._plan(tmp_path, plan)]) == 2
        err = capsys.readouterr().err
        assert "controlled-replicate-join" in err

        assert main(base + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "resumed from checkpoint: 1/2 job(s)" in out
        assert "output tuples:" in out

class TestMemoryFlags:
    BASE = ["join", "--algorithm", "c-rep", "--n", "200", "--space", "1000"]

    def test_memory_budget_reports_spills_only(self, capsys):
        assert main(self.BASE) == 0
        baseline = capsys.readouterr().out
        assert "spilled records:" not in baseline

        assert main(self.BASE + ["--memory-budget", "2k", "--verbose"]) == 0
        budgeted = capsys.readouterr().out
        assert "spilled records:" in budgeted
        assert "memory:" in budgeted  # the dashboard's memory line

        def line(out, prefix):
            return next(l for l in out.splitlines() if l.startswith(prefix))

        # Canonical results unchanged by the budget.
        assert line(budgeted, "simulated time:") == line(baseline, "simulated time:")
        assert line(budgeted, "output tuples:") == line(baseline, "output tuples:")

    def test_memory_budget_rejects_garbage(self, capsys):
        with pytest.raises(SystemExit):
            main(self.BASE + ["--memory-budget", "lots"])
        with pytest.raises(SystemExit):
            main(self.BASE + ["--memory-budget", "0"])

    def test_skipping_flags_quarantine_poison_record(self, tmp_path, capsys):
        from repro.mapreduce.faults import FaultPlan

        path = tmp_path / "plan.json"
        FaultPlan().poison_record(0, 3, job=None).dump(str(path))
        code = main(self.BASE + [
            "--fault-plan", str(path), "--max-attempts", "4",
            "--max-skipped-records", "2",
        ])
        assert code == 0
        assert "skipped records:" in capsys.readouterr().out

    def test_task_timeout_flag_accepted(self, capsys):
        code = main(self.BASE + ["--task-timeout", "30"])
        assert code == 0


class TestStorageFlags:
    BASE = ["join", "--algorithm", "c-rep", "--n", "200", "--space", "1000"]

    def test_replication_reports_locality_and_matches_baseline(self, capsys):
        assert main(self.BASE) == 0
        baseline = capsys.readouterr().out
        assert "map locality:" not in baseline

        assert main(self.BASE + ["--replication", "2", "--workers", "4"]) == 0
        replicated = capsys.readouterr().out
        assert "map locality:" in replicated

        def line(out, prefix):
            return next(l for l in out.splitlines() if l.startswith(prefix))

        # Canonical results unchanged by the storage plane.
        assert line(replicated, "simulated time:") == line(
            baseline, "simulated time:"
        )
        assert line(replicated, "output tuples:") == line(
            baseline, "output tuples:"
        )

    def test_replication_survives_worker_kill(self, capsys):
        code = main(self.BASE + [
            "--replication", "2", "--workers", "4", "--max-attempts", "3",
            "--workers-fail", "w1@map:1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "replica(s) lost" in out
        assert "re-replicated" in out

    def test_fsck_healthy_store(self, tmp_path, capsys):
        root = str(tmp_path / "store")
        assert main(self.BASE + [
            "--dfs-root", root, "--replication", "2", "--workers", "4",
        ]) == 0
        capsys.readouterr()

        assert main(["fsck", "--dfs-root", root]) == 0
        out = capsys.readouterr().out
        assert "HEALTHY" in out

    def test_fsck_detect_repair_cycle(self, tmp_path, capsys):
        root = tmp_path / "store"
        assert main(self.BASE + [
            "--dfs-root", str(root), "--replication", "2", "--workers", "4",
        ]) == 0
        capsys.readouterr()
        replica = sorted((root / "_blocks").rglob("b-*"))[0]
        replica.write_text("#garbage\n", encoding="utf-8")

        assert main(["fsck", "--dfs-root", str(root)]) == 1
        out = capsys.readouterr().out
        assert "corrupt:" in out

        assert main(["fsck", "--dfs-root", str(root), "--repair"]) == 0
        assert "repaired" in capsys.readouterr().out
        assert main(["fsck", "--dfs-root", str(root)]) == 0

    def test_fsck_empty_root_is_healthy(self, tmp_path, capsys):
        assert main(["fsck", "--dfs-root", str(tmp_path / "nothing")]) == 0

    def test_fsck_reports_data_loss(self, tmp_path, capsys):
        root = tmp_path / "store"
        assert main(self.BASE + [
            "--dfs-root", str(root), "--replication", "2", "--workers", "4",
        ]) == 0
        capsys.readouterr()
        # Destroy every replica of one block: unrecoverable.
        victims = sorted((root / "_blocks").rglob("b-00000"))
        target = victims[0].parent.name
        for v in victims:
            if v.parent.name == target:
                v.write_text("#garbage\n", encoding="utf-8")

        assert main(["fsck", "--dfs-root", str(root)]) == 2
        out = capsys.readouterr().out
        assert "data loss" in out
        assert "CORRUPT" in out
