"""Reducer-skew telemetry on a deliberately skewed workload.

The dense-corner generator concentrates half of each relation in one
corner of the space, so under Controlled-Replicate the grid cells
covering that corner — and the reducer owning them — see far more than
their share of input.  The telemetry contract: ``AlgoMetrics.reduce_skew``
and the per-reducer task stats it is derived from must agree exactly
with the canonical ``REDUCE_INPUT_RECORDS`` counter, and must actually
flag the skew.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import derive_grid, run_algorithms
from repro.experiments.workloads import dense_corner_chain
from repro.mapreduce.counters import C
from repro.obs.skew import analyze_job, workflow_skew
from repro.query.predicates import Overlap
from repro.query.query import Query

N = 250
SPACE_SIDE = 4_000.0


@pytest.fixture(scope="module")
def crep_result():
    workload = dense_corner_chain(N, SPACE_SIDE, seed=11)
    query = Query.chain(["R1", "R2", "R3"], Overlap())
    grid = derive_grid(workload.datasets)
    sink = {}
    metrics, consistent, __ = run_algorithms(
        query,
        workload.datasets,
        grid,
        ["c-rep"],
        d_max=workload.d_max,
        sink=sink,
    )
    return metrics["c-rep"], sink["c-rep"]


class TestSkewTelemetry:
    def test_per_reducer_stats_sum_to_canonical_counter(self, crep_result):
        """The per-reducer input-record stats (telemetry) and the
        REDUCE_INPUT_RECORDS counter (canonical) are two views of the
        same records: they must agree job by job."""
        __, result = crep_result
        reduce_jobs = 0
        for job_result in result.workflow.job_results:
            report = analyze_job(job_result)
            if not report.reducer_records:
                continue
            reduce_jobs += 1
            assert sum(report.reducer_records) == job_result.counters.engine(
                C.REDUCE_INPUT_RECORDS
            )
        assert reduce_jobs > 0

    def test_reduce_skew_matches_workflow_skew(self, crep_result):
        metrics, result = crep_result
        assert metrics.reduce_skew == workflow_skew(result.workflow.job_results)

    def test_dense_corner_actually_skews(self, crep_result):
        """The generator earns its name: the hottest reducer carries at
        least twice the mean load (uniform workloads sit near 1.0)."""
        metrics, result = crep_result
        assert metrics.reduce_skew > 2.0
        # The hottest cell is where the blob lives: the skew report of
        # the heaviest reduce job identifies one dominant reducer.
        heaviest = max(
            (analyze_job(r) for r in result.workflow.job_results),
            key=lambda rep: rep.total_reduce_records,
        )
        records = heaviest.reducer_records
        assert records[heaviest.hottest_reducer] == max(records)
        assert max(records) > 2 * (sum(records) / len(records))
