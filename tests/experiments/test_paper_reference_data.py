"""Sanity checks on the paper-reference constants embedded per table.

These constants drive EXPERIMENTS.md's side-by-side comparison; a
mis-shaped list would silently misalign rows.
"""

import pytest

from repro.experiments import TABLES

EXPECTED_ROWS = {
    "table2": 5,
    "table3": 5,
    "table4": 5,
    "table5": 5,
    "table6": 5,
    "table7": 4,
    "table8": 5,
    "table9": 4,
}


@pytest.mark.parametrize("name", sorted(TABLES))
def test_reference_lists_aligned(name):
    module = TABLES[name]
    n = EXPECTED_ROWS[name]
    for attr in ("PAPER_MINUTES", "PAPER_MARKED_M", "PAPER_AFTER_REP_M"):
        table = getattr(module, attr)
        for algo, values in table.items():
            assert len(values) == n, f"{name}.{attr}[{algo}]"


@pytest.mark.parametrize("name", sorted(TABLES))
def test_paper_times_positive_and_monotone_ish(name):
    # Every sweep in the paper makes the workload heavier, so reported
    # times never decrease along a row-sweep.
    module = TABLES[name]
    for algo, values in module.PAPER_MINUTES.items():
        live = [v for v in values if v is not None]
        assert all(v > 0 for v in live), f"{name} {algo}"
        assert live == sorted(live), f"{name} {algo} not monotone"


@pytest.mark.parametrize("name", sorted(TABLES))
def test_paper_marked_identical_between_crep_variants(name):
    module = TABLES[name]
    marked = module.PAPER_MARKED_M
    if "c-rep" in marked and "c-rep-l" in marked:
        assert marked["c-rep"] == marked["c-rep-l"], (
            f"{name}: the limit only bounds replication extent, never "
            "which rectangles are marked (§7.10)"
        )


@pytest.mark.parametrize("name", sorted(TABLES))
def test_paper_crepl_never_communicates_more(name):
    module = TABLES[name]
    rep = module.PAPER_AFTER_REP_M
    if "c-rep" in rep and "c-rep-l" in rep:
        for c, l in zip(rep["c-rep"], rep["c-rep-l"]):
            if c is not None and l is not None:
                assert l <= c
