"""Tests for the experiment harness and tiny-scale runs of every table.

Full-size tables are exercised by the benchmark suite; here each table
runs at a very small scale to validate plumbing, cross-algorithm
consistency and the qualitative shapes that must hold at any scale.
"""

import pytest

from repro.experiments import TABLES
from repro.experiments.common import (
    AlgoMetrics,
    ExperimentResult,
    ExperimentRow,
    derive_grid,
    format_hms,
    run_algorithms,
)
from repro.experiments.workloads import california_self, synthetic_chain
from repro.query.predicates import Overlap
from repro.query.query import Query


class TestHelpers:
    def test_format_hms(self):
        assert format_hms(0) == "00:00:00"
        assert format_hms(3_725) == "01:02:05"
        assert format_hms(59.6) == "00:01:00"

    def test_derive_grid_covers_data(self):
        wl = synthetic_chain(50, 1000.0, seed=1)
        grid = derive_grid(wl.datasets, 16)
        assert grid.num_cells == 16
        for rects in wl.datasets.values():
            for __, r in rects:
                # every rectangle routable
                assert grid.cells_overlapping(r)

    def test_run_algorithms_consistency_flag(self):
        wl = synthetic_chain(120, 1000.0, seed=2)
        q = Query.chain(["R1", "R2", "R3"], Overlap())
        grid = derive_grid(wl.datasets, 16)
        metrics, consistent, tuples = run_algorithms(
            q, wl.datasets, grid, ["cascade", "c-rep", "c-rep-l"], d_max=wl.d_max
        )
        assert consistent
        assert set(metrics) == {"cascade", "c-rep", "c-rep-l"}
        assert all(m.simulated_seconds > 0 for m in metrics.values())

    def test_run_algorithms_requires_names(self):
        wl = synthetic_chain(10, 1000.0, seed=3)
        q = Query.chain(["R1", "R2", "R3"], Overlap())
        with pytest.raises(Exception):
            run_algorithms(q, wl.datasets, derive_grid(wl.datasets, 16), [])


class TestWorkloads:
    def test_synthetic_chain_shape(self):
        wl = synthetic_chain(100, 5000.0, seed=5)
        assert set(wl.datasets) == {"R1", "R2", "R3"}
        assert all(len(v) == 100 for v in wl.datasets.values())
        assert wl.paper_scale == pytest.approx(10_000.0)

    def test_california_self_shape(self):
        wl = california_self(200, compress=10.0, seed=5)
        assert set(wl.datasets) == {"roads"}
        xs = [r.x for __, r in wl.datasets["roads"]]
        assert max(xs) <= 6_300.0

    def test_california_enlarge(self):
        base = california_self(100, compress=10.0, enlarge=None, seed=5)
        big = california_self(100, compress=10.0, enlarge=2.0, seed=5)
        mean_l = lambda wl: sum(r.l for __, r in wl.datasets["roads"]) / 100
        assert mean_l(big) == pytest.approx(2 * mean_l(base))


class TestResultFormatting:
    def test_format_contains_rows(self):
        result = ExperimentResult(
            table="Table X",
            title="demo",
            query="A Ov B",
            parameters="params",
            rows=[
                ExperimentRow(
                    label="n=10",
                    metrics={
                        "c-rep": AlgoMetrics(
                            simulated_seconds=61,
                            shuffled_records=5,
                            rectangles_marked=2,
                            rectangles_after_replication=8,
                            output_tuples=1,
                            wall_seconds=0.1,
                        )
                    },
                )
            ],
        )
        text = result.format()
        assert "Table X" in text
        assert "00:01:01" in text
        assert "2 (8)" in text

    def test_column_accessor(self):
        m = AlgoMetrics(1.0, 2, 3, 4, 5, 0.1)
        result = ExperimentResult(
            table="t", title="t", query="q", parameters="p",
            rows=[ExperimentRow(label="a", metrics={"x": m})],
        )
        assert result.column("x", "shuffled_records") == [2]
        assert result.column("missing", "shuffled_records") == []


@pytest.mark.parametrize("table", sorted(TABLES))
def test_tables_run_tiny_and_consistent(table):
    result = TABLES[table].run(scale=0.05)
    assert result.rows, table
    for row in result.rows:
        assert row.consistent, f"{table} {row.label}: algorithms disagree"
        for metrics in row.metrics.values():
            assert metrics.simulated_seconds > 0
    # the rendered table mentions every row label fragment
    text = result.format()
    assert result.table in text


class TestTableShapes:
    """Qualitative paper shapes that must hold at modest scale."""

    @pytest.fixture(scope="class")
    def t2(self):
        return TABLES["table2"].run(scale=0.15)

    def test_allrep_worst(self, t2):
        first = t2.rows[0].metrics
        assert first["all-rep"].simulated_seconds > first["cascade"].simulated_seconds
        assert first["all-rep"].simulated_seconds > first["c-rep"].simulated_seconds

    def test_allrep_communicates_more(self, t2):
        # At this tiny scale the crossing fraction is inflated, so only
        # strict dominance is asserted; the full-scale benchmark asserts
        # the order-of-magnitude gap.
        first = t2.rows[0].metrics
        assert (
            first["all-rep"].rectangles_after_replication
            > first["c-rep"].rectangles_after_replication
        )
        assert first["all-rep"].shuffled_records > first["c-rep"].shuffled_records

    def test_marked_counts_equal_between_crep_variants(self, t2):
        for row in t2.rows:
            assert (
                row.metrics["c-rep"].rectangles_marked
                == row.metrics["c-rep-l"].rectangles_marked
            )

    def test_crepl_never_replicates_more(self, t2):
        for row in t2.rows:
            assert (
                row.metrics["c-rep-l"].rectangles_after_replication
                <= row.metrics["c-rep"].rectangles_after_replication
            )

    def test_cascade_superlinear_degradation(self, t2):
        times = t2.column("cascade", "simulated_seconds")
        # time ratio outgrows the 5x workload ratio's linear expectation
        assert times[-1] / times[0] > 3.0


class TestDerivedGridEdgeCases:
    def test_degenerate_colinear_data(self):
        from repro.geometry.rectangle import Rect

        datasets = {"R": [(i, Rect(float(i), 5.0, 0.0, 0.0)) for i in range(4)]}
        grid = derive_grid(datasets, 4)
        # Zero-height data still yields a positive-area grid space.
        assert grid.space.area > 0
        for __, r in datasets["R"]:
            assert grid.cells_overlapping(r)

    def test_margin_expands_space(self):
        from repro.geometry.rectangle import Rect

        datasets = {"R": [(0, Rect(0, 10, 10, 10))]}
        tight = derive_grid(datasets, 4)
        wide = derive_grid(datasets, 4, margin=3.0)
        assert wide.space.x_min == tight.space.x_min - 3


class TestCaliforniaTableShapes:
    """The real-data shape the paper leads with: the C-Rep family beats
    Cascade on every row of the California tables."""

    @pytest.fixture(scope="class")
    def t4(self):
        return TABLES["table4"].run(scale=0.35)

    def test_crep_family_beats_cascade(self, t4):
        for row in t4.rows:
            assert (
                row.metrics["c-rep"].simulated_seconds
                < row.metrics["cascade"].simulated_seconds
            )
            assert (
                row.metrics["c-rep-l"].simulated_seconds
                <= row.metrics["c-rep"].simulated_seconds
            )

    def test_everything_grows_with_k(self, t4):
        for algo in ("cascade", "c-rep", "c-rep-l"):
            times = t4.column(algo, "simulated_seconds")
            assert times[-1] > times[0]

    def test_output_grows_with_k(self, t4):
        outputs = [row.output_tuples for row in t4.rows]
        assert outputs == sorted(outputs)
        assert outputs[-1] > 2 * outputs[0]
