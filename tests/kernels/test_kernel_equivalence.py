"""Property tests: the columnar kernels are exact twins of the scalar path.

Every vectorized kernel must reproduce the scalar implementation
*exactly* — same values, same order where order is observable, same
counter charges — because the engine's determinism contract (byte-
identical part files and simulated seconds across kernels) rests on it.
The strategies are deliberately adversarial: coordinates are drawn from
a mix of continuous values and exact grid-boundary/partner-edge values,
extents may be zero, and distances cover ``d = 0`` and ``d > 0``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.rectangle import Rect
from repro.grid.partitioning import GridPartitioning
from repro.index.grid_index import GridIndex
from repro.joins.local import LocalJoiner
from repro.joins.sweep import sweep_pairs
from repro.kernels import numpy_or_none
from repro.kernels.batch import RectBatch
from repro.kernels.predicates import pair_mask, triple_mask
from repro.kernels.sweep import sweep_pairs_batch
from repro.kernels.transforms import (
    cell_ids_of_starts,
    col_ranges,
    cols_of_x,
    min_gaps_to_other_cell,
    quadrant_cell_lists,
    row_ranges,
    rows_of_y,
)
from repro.query.predicates import Contains, Overlap, Range
from repro.query.query import Query

np = numpy_or_none()
pytestmark = pytest.mark.skipif(np is None, reason="numpy not available")

SPACE = 1000.0
#: exact cell boundaries of the 4x4 test grid plus its outside — drawing
#: coordinates from these exercises every tie-break in the ownership and
#: closed-intersection rules
BOUNDARY = [0.0, 250.0, 500.0, 750.0, 1000.0, -10.0, 1010.0]

coord = st.one_of(
    st.sampled_from(BOUNDARY),
    st.floats(min_value=0.0, max_value=SPACE, allow_nan=False),
)
extent = st.one_of(
    st.just(0.0),
    st.sampled_from([250.0, 500.0]),
    st.floats(min_value=0.0, max_value=300.0, allow_nan=False),
)
distance = st.one_of(
    st.just(0.0),
    st.floats(min_value=0.0, max_value=400.0, allow_nan=False),
)


@st.composite
def rect_strategy(draw) -> Rect:
    x = draw(coord)
    y = draw(coord)
    return Rect(
        x=x, y=min(y + draw(extent), SPACE + 100.0), l=draw(extent), b=draw(extent)
    )


@st.composite
def bag_strategy(draw, max_size=40):
    rects = draw(st.lists(rect_strategy(), min_size=0, max_size=max_size))
    return list(enumerate(rects))


def make_grid() -> GridPartitioning:
    return GridPartitioning(Rect(0.0, SPACE, SPACE, SPACE), rows=4, cols=4)


# ----------------------------------------------------------------------
# Batched plane-sweep
# ----------------------------------------------------------------------
@settings(max_examples=80, deadline=None)
@given(bag_strategy(), bag_strategy(), distance)
def test_sweep_batch_matches_scalar_pairs_and_order(left, right, d):
    assert sweep_pairs_batch(left, right, d) == list(sweep_pairs(left, right, d))


# ----------------------------------------------------------------------
# Grid index: scalar search on both kernels, batch probes, counters
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(bag_strategy(), rect_strategy(), distance)
def test_grid_index_scalar_search_identical_across_kernels(pairs, query, d):
    py = GridIndex(pairs=pairs, kernel="python")
    vec = GridIndex(pairs=pairs, kernel="numpy")
    py_hits = [(e.payload, e.rect) for e in py.search(query, d)]
    vec_hits = [(e.payload, e.rect) for e in vec.search(query, d)]
    assert py_hits == vec_hits
    assert py.probes == vec.probes


@settings(max_examples=60, deadline=None)
@given(bag_strategy(), rect_strategy(), distance)
def test_probe_batch_is_lazy_exact_twin_of_scalar_search(pairs, query, d):
    vec = GridIndex(pairs=pairs, kernel="numpy")
    cands, pos, scanned = vec.probe_batch(query, d)
    assert vec.probes == 0  # probe_batch never charges up front

    py = GridIndex(pairs=pairs, kernel="python")
    assert cands == [(e.payload, e.rect) for e in py.search(query, d)]
    assert py.probes == scanned  # exhaustion charge

    # Abandoning after candidate j must charge what the scalar generator
    # had incrementally charged by its (j+1)-th yield.
    for j in range(min(len(cands), 4)):
        partial = GridIndex(pairs=pairs, kernel="python")
        gen = partial.search(query, d)
        for __ in range(j + 1):
            next(gen)
        assert partial.probes == pos[j] + 1


@settings(max_examples=40, deadline=None)
@given(bag_strategy(), bag_strategy(max_size=12), distance)
def test_probe_frontier_matches_per_query_scalar_probes(pairs, queries, d):
    vec = GridIndex(pairs=pairs, kernel="numpy")
    if getattr(vec, "batch", None) is None:
        return  # empty index: frontier path is never taken by the joiner
    qbatch = RectBatch.from_pairs(np, queries)
    parents, entries = vec.probe_frontier(
        qbatch, np.arange(len(queries), dtype=np.int64), d
    )
    got = [
        (int(p), vec._rid_rects[int(e)][0]) for p, e in zip(parents, entries)
    ]
    expected = []
    expected_probes = 0
    for qi, (__, q) in enumerate(queries):
        ref = GridIndex(pairs=pairs, kernel="python")
        hits = [(qi, e.payload) for e in ref.search(q, d)]
        expected.extend(hits)
        expected_probes += ref.probes
    assert got == expected
    assert vec.probes == expected_probes


# ----------------------------------------------------------------------
# Grid transforms vs the scalar partitioning methods
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(bag_strategy(max_size=30))
def test_grid_transforms_match_scalar_methods(pairs):
    grid = make_grid()
    batch = RectBatch.from_pairs(np, pairs)
    rects = [r for __, r in pairs]
    xs = np.asarray([r.x for r in rects], dtype=np.float64)
    ys = np.asarray([r.y for r in rects], dtype=np.float64)

    assert cols_of_x(np, grid, xs).tolist() == [grid.col_of_x(r.x) for r in rects]
    assert rows_of_y(np, grid, ys).tolist() == [grid.row_of_y(r.y) for r in rects]
    assert cell_ids_of_starts(np, grid, batch).tolist() == [
        grid.cell_id_of(r) for r in rects
    ]
    lo, hi = col_ranges(np, grid, batch)
    assert list(zip(lo.tolist(), hi.tolist())) == [grid.col_range(r) for r in rects]
    lo, hi = row_ranges(np, grid, batch)
    assert list(zip(lo.tolist(), hi.tolist())) == [grid.row_range(r) for r in rects]


@settings(max_examples=30, deadline=None)
@given(bag_strategy(max_size=20), st.integers(min_value=0, max_value=15), distance)
def test_grid_gap_and_quadrant_transforms_match_scalar(pairs, cell_id, d):
    grid = make_grid()
    # Restrict to rectangles starting in the chosen cell, as the marking
    # engine does before asking for gaps/replication targets.
    pairs = [p for p in pairs if grid.cell_id_of(p[1]) == cell_id]
    if not pairs:
        return
    cell = grid.cell_by_id(cell_id)
    batch = RectBatch.from_pairs(np, pairs)
    gaps = min_gaps_to_other_cell(np, grid, batch, cell)
    assert gaps.tolist() == [
        grid.min_gap_to_other_cell(r, cell) for __, r in pairs
    ]
    flat, counts = quadrant_cell_lists(np, grid, batch, d=d)
    got, at = [], 0
    for c in counts:
        got.append(flat[at : at + c])
        at += c
    expected = [
        [c.cell_id for c in grid.fourth_quadrant_within(r, d)] for __, r in pairs
    ]
    assert got == expected


# ----------------------------------------------------------------------
# Predicate masks vs Triple.holds_with
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    bag_strategy(max_size=25),
    rect_strategy(),
    distance,
    st.sampled_from(["overlap", "range", "contains"]),
    st.booleans(),
)
def test_masks_match_scalar_holds_with(pairs, other, d, pred_name, left_side):
    if not pairs:
        return
    predicate = {
        "overlap": Overlap(),
        "range": Range(d) if d > 0 else Overlap(),
        "contains": Contains(),
    }[pred_name]
    query = Query.chain(["R1", "R2"], predicate)
    triple = query.triples[0]
    slot = triple.left if left_side else triple.right
    batch = RectBatch.from_pairs(np, pairs)
    idx = np.arange(len(pairs), dtype=np.int64)

    mask = triple_mask(np, triple, slot, batch, idx, other)
    assert mask.tolist() == [
        triple.holds_with(slot, r, other) for __, r in pairs
    ]

    obatch = RectBatch.from_pairs(np, [(0, other)] * len(pairs))
    pmask = pair_mask(np, triple, slot, batch, idx, obatch, idx)
    assert pmask.tolist() == mask.tolist()


# ----------------------------------------------------------------------
# LocalJoiner: full enumeration, assignments and check accounting
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(
    bag_strategy(max_size=15),
    bag_strategy(max_size=15),
    bag_strategy(max_size=15),
    distance,
)
def test_local_joiner_equivalent_across_kernels(b1, b2, b3, d):
    predicate = Range(d) if d > 0 else Overlap()
    query = Query.chain(["R1", "R2", "R3"], predicate)
    bags = {"R1": b1, "R2": b2, "R3": b3}
    py_res, py_checks = LocalJoiner(query, kernel="python").enumerate(bags)
    vec_res, vec_checks = LocalJoiner(query, kernel="numpy").enumerate(bags)
    assert py_res == vec_res
    assert py_checks == vec_checks


@settings(max_examples=20, deadline=None)
@given(bag_strategy(max_size=12), bag_strategy(max_size=12), distance)
def test_local_joiner_self_join_distinctness_across_kernels(b1, b2, d):
    # Two slots read the same dataset: the distinctness filter must not
    # change totals between kernels.
    predicate = Range(d) if d > 0 else Overlap()
    query = Query.chain(
        ["R1", "R2#1", "R2#2"],
        predicate,
        datasets={"R1": "R1", "R2#1": "R2", "R2#2": "R2"},
    )
    bags = {"R1": b1, "R2#1": b2, "R2#2": b2}
    py_res, py_checks = LocalJoiner(query, kernel="python").enumerate(bags)
    vec_res, vec_checks = LocalJoiner(query, kernel="numpy").enumerate(bags)
    assert py_res == vec_res
    assert py_checks == vec_checks
