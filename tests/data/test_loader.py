"""Dataset loader diagnostics: malformed records name their source line.

External files are the one input the repo does not generate itself, so
every parse failure must surface as a one-line ``path:line`` diagnosis
(1-based, the editor convention) quoting the offending text — never a
codec traceback.
"""

from __future__ import annotations

import pytest

from repro.data import load_rect_file, load_rect_lines
from repro.errors import DatasetFormatError

GOOD = ["0,10,20,5,5", "1,30,40,2.5,7"]


class TestLoadRectLines:
    def test_parses_records(self):
        rects = load_rect_lines(GOOD)
        assert [rid for rid, __ in rects] == [0, 1]
        assert rects[0][1].x == 10.0

    def test_skips_blank_and_comment_lines(self):
        rects = load_rect_lines(["# header", "", GOOD[0], "   ", GOOD[1]])
        assert len(rects) == 2

    def test_malformed_line_names_source_and_line(self):
        lines = [GOOD[0], "not,a,rect"]
        with pytest.raises(DatasetFormatError) as err:
            load_rect_lines(lines, source="data/R1.csv")
        message = str(err.value)
        assert message.startswith("data/R1.csv:2: ")
        assert "'not,a,rect'" in message

    def test_comment_lines_do_not_shift_line_numbers(self):
        lines = ["# comment", GOOD[0], "bogus"]
        with pytest.raises(DatasetFormatError, match=r"<memory>:3: "):
            load_rect_lines(lines)


class TestLoadRectFile:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "rects.csv"
        path.write_text("\n".join(GOOD) + "\n", encoding="utf-8")
        rects = load_rect_file(str(path))
        assert len(rects) == 2

    def test_malformed_file_names_path(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(f"{GOOD[0]}\n0,1,2\n", encoding="utf-8")
        with pytest.raises(DatasetFormatError, match=rf"{path}:2: "):
            load_rect_file(str(path))

    def test_missing_file_is_a_loud_error(self, tmp_path):
        with pytest.raises(DatasetFormatError, match="cannot read dataset file"):
            load_rect_file(str(tmp_path / "absent.csv"))

    def test_empty_file_is_a_loud_error(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("# only comments\n", encoding="utf-8")
        with pytest.raises(DatasetFormatError, match="holds no records"):
            load_rect_file(str(path))


class TestCliDatasetErrors:
    """`--dataset NAME=FILE` failures come out as one-line errors."""

    def test_malformed_dataset_file(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "R1.csv"
        path.write_text("0,10,20,5,5\ngarbage line\n", encoding="utf-8")
        code = main([
            "join", "--algorithm", "c-rep", "--n", "50", "--space", "1000",
            "--dataset", f"R1={path}",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert f"{path}:2: " in err
        assert "garbage line" in err

    def test_unknown_relation_name(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "R9.csv"
        path.write_text("0,10,20,5,5\n", encoding="utf-8")
        code = main([
            "join", "--algorithm", "c-rep", "--n", "50", "--space", "1000",
            "--dataset", f"R9={path}",
        ])
        assert code == 2
        assert "unknown relation" in capsys.readouterr().err

    def test_dataset_override_runs(self, tmp_path, capsys):
        from repro.cli import main
        from repro.data.synthetic import SyntheticSpec, generate_rects

        spec = SyntheticSpec(
            n=60, x_range=(0, 1000), y_range=(0, 1000),
            l_range=(0, 80), b_range=(0, 80), seed=3,
        )
        path = tmp_path / "R1.csv"
        path.write_text(
            "\n".join(f"{rid},{r.x},{r.y},{r.l},{r.b}" for rid, r in generate_rects(spec))
            + "\n",
            encoding="utf-8",
        )
        code = main([
            "join", "--algorithm", "c-rep", "--n", "50", "--space", "1000",
            "--dataset", f"R1={path}",
        ])
        assert code == 0
        assert "output tuples:" in capsys.readouterr().out
