"""Unit tests for the synthetic workload generator (paper §7.8.2)."""

import numpy as np
import pytest

from repro.data.synthetic import SyntheticSpec, generate_rects, generate_relations
from repro.errors import DataGenerationError


class TestSpecValidation:
    def test_defaults_are_papers(self):
        spec = SyntheticSpec(n=10)
        assert spec.x_range == (0, 100_000)
        assert spec.l_range == (0, 100)

    def test_negative_n(self):
        with pytest.raises(DataGenerationError):
            SyntheticSpec(n=-1)

    def test_empty_range(self):
        with pytest.raises(DataGenerationError):
            SyntheticSpec(n=1, x_range=(10, 5))

    def test_unknown_distribution(self):
        with pytest.raises(DataGenerationError):
            SyntheticSpec(n=1, dx="pareto")

    def test_side_exceeding_space(self):
        with pytest.raises(DataGenerationError):
            SyntheticSpec(n=1, x_range=(0, 50), l_range=(0, 100))

    def test_space_rect(self):
        spec = SyntheticSpec(n=1, x_range=(0, 10), y_range=(5, 25),
                             l_range=(0, 5), b_range=(0, 5))
        assert spec.space.x_min == 0 and spec.space.x_max == 10
        assert spec.space.y_min == 5 and spec.space.y_max == 25

    def test_max_diagonal(self):
        spec = SyntheticSpec(n=1, l_range=(0, 30), b_range=(0, 40))
        assert spec.max_diagonal == 50


class TestGeneration:
    def test_count_and_rids(self):
        rects = generate_rects(SyntheticSpec(n=100, seed=3))
        assert len(rects) == 100
        assert [rid for rid, __ in rects] == list(range(100))

    def test_deterministic(self):
        a = generate_rects(SyntheticSpec(n=50, seed=9))
        b = generate_rects(SyntheticSpec(n=50, seed=9))
        assert a == b

    def test_seed_changes_data(self):
        a = generate_rects(SyntheticSpec(n=50, seed=1))
        b = generate_rects(SyntheticSpec(n=50, seed=2))
        assert a != b

    def test_containment_in_space(self):
        spec = SyntheticSpec(n=500, x_range=(0, 1000), y_range=(0, 1000),
                             l_range=(0, 100), b_range=(0, 100), seed=4)
        space = spec.space
        for __, r in generate_rects(spec):
            assert space.contains_rect(r)

    def test_sides_within_range(self):
        spec = SyntheticSpec(n=500, l_range=(0, 60), b_range=(0, 30), seed=5)
        for __, r in generate_rects(spec):
            assert 0 <= r.l <= 60
            assert 0 <= r.b <= 30

    def test_zero_n(self):
        assert generate_rects(SyntheticSpec(n=0)) == []

    def test_uniform_spread(self):
        spec = SyntheticSpec(n=4000, x_range=(0, 1000), y_range=(0, 1000),
                             l_range=(0, 1), b_range=(0, 1), seed=6)
        xs = np.array([r.x for __, r in generate_rects(spec)])
        # Uniform: each quartile of the space holds roughly a quarter.
        for q in range(4):
            frac = np.mean((xs >= q * 250) & (xs < (q + 1) * 250))
            assert 0.2 < frac < 0.3

    def test_gaussian_concentrates_center(self):
        spec = SyntheticSpec(n=4000, x_range=(0, 1000), y_range=(0, 1000),
                             l_range=(0, 1), b_range=(0, 1), dx="gaussian", seed=6)
        xs = np.array([r.x for __, r in generate_rects(spec)])
        center = np.mean((xs > 250) & (xs < 750))
        # ±1.5 sigma holds ~86.6% of a gaussian vs 50% of a uniform.
        assert center > 0.8

    def test_clustered_is_lumpy(self):
        spec = SyntheticSpec(n=4000, x_range=(0, 1000), y_range=(0, 1000),
                             l_range=(0, 1), b_range=(0, 1),
                             dx="clustered", clusters=4, seed=6)
        xs = np.array([r.x for __, r in generate_rects(spec)])
        counts, __ = np.histogram(xs, bins=20, range=(0, 1000))
        # Clustered data has far more unequal bins than uniform.
        assert counts.max() > 3 * max(1, counts.min())


class TestRelations:
    def test_names_and_decorrelation(self):
        spec = SyntheticSpec(n=30, seed=100)
        rels = generate_relations(spec, ["R1", "R2", "R3"])
        assert set(rels) == {"R1", "R2", "R3"}
        assert rels["R1"] != rels["R2"]

    def test_deterministic(self):
        spec = SyntheticSpec(n=30, seed=100)
        assert generate_relations(spec, ["A", "B"]) == generate_relations(
            spec, ["A", "B"]
        )

    def test_with_seed(self):
        spec = SyntheticSpec(n=5, seed=1)
        assert spec.with_seed(2).seed == 2
        assert spec.with_seed(2).n == 5
