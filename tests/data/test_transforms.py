"""Unit tests for data-set level transformations."""

import pytest

from repro.data.transforms import (
    compress_space,
    dataset_space,
    enlarge_dataset,
    max_diagonal,
    sample_dataset,
)
from repro.errors import DataGenerationError
from repro.geometry.rectangle import Rect


@pytest.fixture
def pairs():
    return [(0, Rect(10, 90, 4, 6)), (1, Rect(50, 40, 10, 10))]


class TestEnlarge:
    def test_factor_applied(self, pairs):
        out = enlarge_dataset(pairs, 2.0)
        assert out[0][1].l == 8 and out[0][1].b == 12
        assert out[0][1].center == pairs[0][1].center

    def test_rids_preserved(self, pairs):
        assert [rid for rid, __ in enlarge_dataset(pairs, 1.5)] == [0, 1]


class TestCompress:
    def test_positions_scaled_sizes_kept(self, pairs):
        out = compress_space(pairs, 10.0)
        assert out[0][1].x == 1 and out[0][1].y == 9
        assert out[0][1].l == 4 and out[0][1].b == 6

    def test_invalid_factor(self, pairs):
        with pytest.raises(DataGenerationError):
            compress_space(pairs, 0)


class TestSample:
    def test_probability_one_keeps_all(self, pairs):
        assert sample_dataset(pairs, 1.0) == pairs

    def test_probability_zero_drops_all(self, pairs):
        assert sample_dataset(pairs, 0.0) == []

    def test_roughly_half(self):
        pairs = [(i, Rect(i, i + 1.0, 1, 1)) for i in range(4000)]
        kept = sample_dataset(pairs, 0.5, seed=1)
        assert 1800 <= len(kept) <= 2200

    def test_deterministic(self, pairs):
        assert sample_dataset(pairs, 0.5, seed=3) == sample_dataset(
            pairs, 0.5, seed=3
        )

    def test_invalid_probability(self, pairs):
        with pytest.raises(DataGenerationError):
            sample_dataset(pairs, 1.5)


class TestSpaceAndDiagonal:
    def test_dataset_space_covers_everything(self, pairs):
        space = dataset_space({"a": pairs})
        for __, r in pairs:
            assert space.contains_rect(r)

    def test_margin(self, pairs):
        tight = dataset_space({"a": pairs})
        wide = dataset_space({"a": pairs}, margin=5.0)
        assert wide.x_min == tight.x_min - 5
        assert wide.y_max == tight.y_max + 5

    def test_empty_rejected(self):
        with pytest.raises(DataGenerationError):
            dataset_space({"a": []})

    def test_max_diagonal(self, pairs):
        diag = max_diagonal({"a": pairs})
        assert diag == pytest.approx(Rect(0, 0, 10, 10).diagonal)
