"""Calibration tests: the synthetic California road sample must match
the aggregate statistics the paper reports (Section 7.8.2)."""

import pytest

from repro.data.california import (
    CALIFORNIA_FULL_SIZE,
    CaliforniaSpec,
    dataset_statistics,
    generate_california,
)
from repro.errors import DataGenerationError


@pytest.fixture(scope="module")
def roads():
    return generate_california(CaliforniaSpec(n=50_000, seed=7))


class TestSpec:
    def test_full_size_constant(self):
        assert CALIFORNIA_FULL_SIZE == 2_092_079

    def test_space(self):
        spec = CaliforniaSpec(n=1)
        assert spec.space.x_max == 63_000
        assert spec.space.y_max == 100_000

    def test_validation(self):
        with pytest.raises(DataGenerationError):
            CaliforniaSpec(n=-1)
        with pytest.raises(DataGenerationError):
            CaliforniaSpec(n=1, background=1.5)
        with pytest.raises(DataGenerationError):
            CaliforniaSpec(n=1, clusters=0)

    def test_max_diagonal_covers_reported_maxima(self):
        spec = CaliforniaSpec(n=1)
        assert spec.max_diagonal >= 2285


class TestCalibration:
    """The paper's reported statistics, with sampling tolerances."""

    def test_mean_length_about_18(self, roads):
        stats = dataset_statistics(roads)
        assert stats["mean_l"] == pytest.approx(18.0, rel=0.25)

    def test_mean_breadth_about_8(self, roads):
        stats = dataset_statistics(roads)
        assert stats["mean_b"] == pytest.approx(8.0, rel=0.25)

    def test_min_sides_one(self, roads):
        stats = dataset_statistics(roads)
        assert stats["min_l"] >= 1.0
        assert stats["min_b"] >= 1.0

    def test_max_sides_capped(self, roads):
        stats = dataset_statistics(roads)
        assert stats["max_l"] <= 2285.0
        assert stats["max_b"] <= 1344.0

    def test_97_percent_under_100(self, roads):
        stats = dataset_statistics(roads)
        assert stats["frac_both_lt_100"] == pytest.approx(0.97, abs=0.02)

    def test_99_percent_under_1000(self, roads):
        stats = dataset_statistics(roads)
        assert stats["frac_both_lt_1000"] >= 0.99

    def test_containment(self, roads):
        space = CaliforniaSpec(n=1).space
        for __, r in roads[:2000]:
            assert space.contains_rect(r)


class TestGeneration:
    def test_deterministic(self):
        a = generate_california(CaliforniaSpec(n=100, seed=1))
        b = generate_california(CaliforniaSpec(n=100, seed=1))
        assert a == b

    def test_empty(self):
        assert generate_california(CaliforniaSpec(n=0)) == []

    def test_statistics_of_empty_rejected(self):
        with pytest.raises(DataGenerationError):
            dataset_statistics([])

    def test_clustering_is_visible(self):
        # Clustered start-points: the densest 5% of 1km x-bins should
        # hold far more than 5% of the roads.
        import numpy as np

        roads = generate_california(CaliforniaSpec(n=20_000, seed=3))
        xs = np.array([r.x for __, r in roads])
        counts, __ = np.histogram(xs, bins=63, range=(0, 63_000))
        top3 = np.sort(counts)[-3:].sum()
        assert top3 / len(roads) > 0.1


class TestChainStructure:
    """The generator must reproduce the road data's join structure:
    consecutive segments share endpoints, so the overlap graph is
    chain-like with degree ~2, not clique-like."""

    def test_consecutive_segments_touch(self):
        roads = generate_california(CaliforniaSpec(n=500, seed=11))
        touching = sum(
            1
            for (__, a), (__, b) in zip(roads, roads[1:])
            if a.intersects(b)
        )
        # Within a walk, consecutive MBBs share an endpoint; only walk
        # boundaries (~1 in segments_per_road) break the chain.
        assert touching / (len(roads) - 1) > 0.8

    def test_mean_overlap_degree_matches_roads(self):
        from repro.index import Entry, GridIndex

        roads = generate_california(CaliforniaSpec(n=4000, seed=11))
        index = GridIndex([Entry(rect=r, payload=rid) for rid, r in roads])
        degs = [
            sum(1 for e in index.search(r) if e.payload != rid)
            for rid, r in roads[:800]
        ]
        mean_deg = sum(degs) / len(degs)
        # Chain interior degree is 2; crossings add a little.
        assert 1.5 < mean_deg < 4.0

    def test_no_overlap_cliques(self):
        from repro.index import Entry, GridIndex

        roads = generate_california(CaliforniaSpec(n=4000, seed=11))
        index = GridIndex([Entry(rect=r, payload=rid) for rid, r in roads])
        max_deg = max(
            sum(1 for e in index.search(r) if e.payload != rid)
            for rid, r in roads[:800]
        )
        assert max_deg < 50  # blob clusters would reach hundreds
