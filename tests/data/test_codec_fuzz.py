"""Fuzz the fast single-pass codec paths against reference decoders.

The PR-7 codec work rewrote the scalar decoders with bounded splits
(``maxsplit=...``) and added bulk ``encode_lines``/``decode_lines``
overrides.  These tests pin the byte-level contract: for *any* input
line — valid, mutated, or random garbage — the fast path and a
straightforward reference implementation must either return equal
records or raise :class:`DFSError` with the identical message.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.io import (
    RECT_CODEC,
    TAGGED_CODEC,
    TUPLE_CODEC,
    TaggedRect,
    TupleRecord,
    decode_rect,
    decode_tagged,
    decode_tuple,
    encode_rect,
    encode_tagged,
    encode_tuple,
    lines_to_rects,
)
from repro.errors import DFSError, GeometryError
from repro.geometry.rectangle import Rect

# ----------------------------------------------------------------------
# Reference decoders: the naive unbounded-split forms the fast paths
# replaced.  Kept deliberately simple — correctness baseline, not speed.
# ----------------------------------------------------------------------


def ref_decode_rect(line):
    try:
        rid_s, x, y, l, b = line.split(",")
        return int(rid_s), Rect(float(x), float(y), float(l), float(b))
    except (ValueError, TypeError) as exc:
        raise DFSError(f"malformed rectangle record {line!r}") from exc


def ref_decode_tagged(line):
    try:
        dataset, rid_s, marked_s, coords = line.split("|")
        x, y, l, b = coords.split(",")
        return TaggedRect(
            dataset=dataset,
            rid=int(rid_s),
            rect=Rect(float(x), float(y), float(l), float(b)),
            marked=bool(int(marked_s)),
        )
    except (ValueError, TypeError) as exc:
        raise DFSError(f"malformed tagged record {line!r}") from exc


def ref_decode_tuple(line):
    try:
        bindings = {}
        for part in line.split(";"):
            slot, payload = part.split("=")
            rid_s, x, y, l, b = payload.split(":")
            bindings[slot] = (
                int(rid_s),
                Rect(float(x), float(y), float(l), float(b)),
            )
        return bindings
    except (ValueError, TypeError) as exc:
        raise DFSError(f"malformed tuple record {line!r}") from exc


def outcome(fn, line):
    """``("ok", value)`` or ``("<kind>", message)`` — comparable either way.

    ``GeometryError`` (a mutated line parsing to a negative side, say)
    escapes both implementations, so it too is captured and compared.
    """
    try:
        return ("ok", fn(line))
    except DFSError as exc:
        return ("err", str(exc))
    except GeometryError as exc:
        return ("geom", str(exc))


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
coord = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False)
side = st.floats(min_value=0, max_value=1e6, allow_nan=False)
rects = st.builds(Rect, x=coord, y=coord, l=side, b=side)
rids = st.integers(min_value=0, max_value=2**31)
dataset_names = st.text(
    alphabet=st.characters(blacklist_characters="|,\n\r"), min_size=1, max_size=8
)
slot_names = st.text(
    alphabet=st.characters(blacklist_characters="=;:|,\n\r"), min_size=1, max_size=8
)
#: raw garbage plus the delimiters the decoders key on, so mutation
#: actually exercises the bounded-split edge cases
noisy_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=40
)


@st.composite
def mutated_lines(draw, encoder):
    """A valid encoded line with random delimiter/garbage splices."""
    line = draw(encoder)
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        pos = draw(st.integers(min_value=0, max_value=len(line)))
        splice = draw(st.sampled_from(["|", ",", ";", "=", ":", "x", "-", ""]))
        line = line[:pos] + splice + line[pos:]
    return line


valid_rect_lines = st.builds(encode_rect, rids, rects)
valid_tagged_lines = st.builds(
    lambda d, rid, r, m: encode_tagged(TaggedRect(d, rid, r, m)),
    dataset_names,
    rids,
    rects,
    st.booleans(),
)
valid_tuple_lines = st.builds(
    lambda bindings: encode_tuple(bindings),
    st.dictionaries(slot_names, st.tuples(rids, rects), min_size=1, max_size=3),
)


# ----------------------------------------------------------------------
# Scalar decoder equivalence
# ----------------------------------------------------------------------
class TestScalarEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(st.one_of(valid_rect_lines, mutated_lines(valid_rect_lines), noisy_text))
    def test_decode_rect(self, line):
        assert outcome(decode_rect, line) == outcome(ref_decode_rect, line)

    @settings(max_examples=200, deadline=None)
    @given(
        st.one_of(valid_tagged_lines, mutated_lines(valid_tagged_lines), noisy_text)
    )
    def test_decode_tagged(self, line):
        assert outcome(decode_tagged, line) == outcome(ref_decode_tagged, line)

    @settings(max_examples=200, deadline=None)
    @given(st.one_of(valid_tuple_lines, mutated_lines(valid_tuple_lines), noisy_text))
    def test_decode_tuple(self, line):
        assert outcome(decode_tuple, line) == outcome(ref_decode_tuple, line)

    def test_known_fold_cases(self):
        """The bounded splits fold stray delimiters into fields the float
        or int parse then rejects — same lines fail, same messages."""
        for line in [
            "a|1|1|0,0,0,0|extra",  # stray | folds into coords
            "a|1|1|0,0,0,0,9",  # too many coordinate fields
            "s=1:0:0:0:0=x",  # stray = folds into payload
            "s=t=1:0:0:0:0",  # = in what looks like a slot name
            "1,2,3,4,5,6",  # too many rect fields
        ]:
            for fast, ref in [
                (decode_tagged, ref_decode_tagged),
                (decode_tuple, ref_decode_tuple),
                (decode_rect, ref_decode_rect),
            ]:
                assert outcome(fast, line) == outcome(ref, line)


# ----------------------------------------------------------------------
# Bulk codec equivalence: encode_lines / decode_lines vs per-record
# ----------------------------------------------------------------------
class TestBulkEquivalence:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(rids, rects), max_size=10))
    def test_rect_codec(self, records):
        lines = RECT_CODEC.encode_lines(records)
        assert lines == [RECT_CODEC.encode(r) for r in records]
        assert RECT_CODEC.decode_lines(lines) == [
            RECT_CODEC.decode(line) for line in lines
        ]
        assert lines_to_rects(lines) == [decode_rect(line) for line in lines]

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.builds(TaggedRect, dataset_names, rids, rects, st.booleans()),
            max_size=10,
        )
    )
    def test_tagged_codec(self, records):
        lines = TAGGED_CODEC.encode_lines(records)
        assert lines == [TAGGED_CODEC.encode(r) for r in records]
        assert TAGGED_CODEC.decode_lines(lines) == [
            TAGGED_CODEC.decode(line) for line in lines
        ]

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.dictionaries(
                slot_names, st.tuples(rids, rects), min_size=1, max_size=3
            ),
            max_size=6,
        )
    )
    def test_tuple_codec(self, bindings_list):
        records = [TupleRecord(b) for b in bindings_list]
        lines = TUPLE_CODEC.encode_lines(records)
        assert lines == [TUPLE_CODEC.encode(r) for r in records]
        assert TUPLE_CODEC.decode_lines(lines) == [
            TUPLE_CODEC.decode(line) for line in lines
        ]

    def test_tagged_bulk_rejects_delimiter_dataset(self):
        bad = TaggedRect("a|b", 1, Rect(0, 0, 1, 1), False)
        with pytest.raises(DFSError, match="delimiter"):
            TAGGED_CODEC.encode_lines([bad])
        with pytest.raises(DFSError, match="delimiter"):
            TAGGED_CODEC.encode(bad)

    def test_csv_cache_never_leaks_input_spelling(self):
        """A rectangle decoded from a non-``repr`` spelling must re-encode
        in canonical ``repr`` form — the ``_csv`` cache is only ever
        seeded by an encode, never by decoded input text."""
        rid, rect = decode_rect("7,1.50,2.2500,3.0,4.000")
        assert encode_rect(rid, rect) == "7,1.5,2.25,3.0,4.0"
