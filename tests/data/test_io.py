"""Unit and property tests for the record codecs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data.io import (
    TaggedRect,
    decode_rect,
    decode_result,
    decode_tagged,
    decode_tuple,
    encode_rect,
    encode_result,
    encode_tagged,
    encode_tuple,
    lines_to_rects,
    rects_to_lines,
)
from repro.errors import DFSError
from repro.geometry.rectangle import Rect

coord = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False)
side = st.floats(min_value=0, max_value=1e6, allow_nan=False)
rects = st.builds(Rect, x=coord, y=coord, l=side, b=side)


class TestRectCodec:
    def test_roundtrip(self):
        r = Rect(1.5, 2.25, 3.125, 4.0)
        assert decode_rect(encode_rect(42, r)) == (42, r)

    @given(st.integers(min_value=0, max_value=2**31), rects)
    def test_roundtrip_property(self, rid, rect):
        assert decode_rect(encode_rect(rid, rect)) == (rid, rect)

    def test_exactness_of_awkward_floats(self):
        r = Rect(0.1, 0.2, 0.30000000000000004, 1e-17)
        rid, back = decode_rect(encode_rect(7, r))
        assert back == r  # bit-exact, not approximately

    def test_malformed(self):
        with pytest.raises(DFSError):
            decode_rect("1,2,3")
        with pytest.raises(DFSError):
            decode_rect("a,b,c,d,e")

    def test_relation_roundtrip(self):
        pairs = [(i, Rect(i, i + 1.0, 1, 1)) for i in range(5)]
        assert lines_to_rects(rects_to_lines(pairs)) == pairs


class TestTaggedCodec:
    def test_roundtrip(self):
        t = TaggedRect(dataset="roads", rid=9, rect=Rect(1, 2, 3, 1), marked=True)
        assert decode_tagged(encode_tagged(t)) == t

    @given(
        st.text(
            alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
            min_size=1,
            max_size=8,
        ),
        st.integers(min_value=0, max_value=10**9),
        rects,
        st.booleans(),
    )
    def test_roundtrip_property(self, dataset, rid, rect, marked):
        t = TaggedRect(dataset=dataset, rid=rid, rect=rect, marked=marked)
        assert decode_tagged(encode_tagged(t)) == t

    def test_delimiter_in_dataset_rejected(self):
        t = TaggedRect(dataset="a|b", rid=1, rect=Rect(0, 0, 1, 1), marked=False)
        with pytest.raises(DFSError):
            encode_tagged(t)

    def test_malformed(self):
        with pytest.raises(DFSError):
            decode_tagged("no fields here")


class TestTupleCodec:
    def test_roundtrip(self):
        bindings = {
            "R1": (3, Rect(0.5, 9.5, 1, 1)),
            "R2": (8, Rect(4, 4, 2, 2)),
        }
        assert decode_tuple(encode_tuple(bindings)) == bindings

    def test_deterministic_slot_order(self):
        b1 = {"B": (1, Rect(0, 0, 1, 1)), "A": (2, Rect(1, 1, 1, 1))}
        b2 = dict(reversed(list(b1.items())))
        assert encode_tuple(b1) == encode_tuple(b2)

    def test_delimiter_in_slot_rejected(self):
        with pytest.raises(DFSError):
            encode_tuple({"a=b": (1, Rect(0, 0, 1, 1))})

    def test_malformed(self):
        with pytest.raises(DFSError):
            decode_tuple("R1=gibberish")


class TestResultCodec:
    def test_roundtrip(self):
        line = encode_result(("R1", "R2", "R3"), {"R1": 5, "R2": 2, "R3": 9})
        assert decode_result(line) == (5, 2, 9)

    def test_slot_order_respected(self):
        line = encode_result(("Z", "A"), {"A": 1, "Z": 2})
        assert decode_result(line) == (2, 1)

    def test_malformed(self):
        with pytest.raises(DFSError):
            decode_result("1\tx\t3")
