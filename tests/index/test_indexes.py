"""Unit tests for the local spatial indexes (grid, R-tree, scan)."""

import pytest

from repro.geometry.rectangle import Rect
from repro.index import Entry, GridIndex, NestedLoopIndex, RTree, make_index


def entries_grid(n: int = 25, cell: float = 10.0) -> list[Entry]:
    """n rectangles laid out on a diagonal-ish lattice."""
    out = []
    for i in range(n):
        x = (i % 5) * cell
        y = (i // 5) * cell + 5.0
        out.append(Entry(rect=Rect(x, y, 4.0, 4.0), payload=i))
    return out


@pytest.fixture(params=["grid", "rtree", "scan"])
def index_kind(request) -> str:
    return request.param


class TestCommonBehaviour:
    def test_len(self, index_kind):
        idx = make_index(index_kind, entries_grid())
        assert len(idx) == 25

    def test_empty_index(self, index_kind):
        idx = make_index(index_kind, [])
        assert len(idx) == 0
        assert list(idx.search(Rect(0, 10, 5, 5))) == []

    def test_search_exact_overlap(self, index_kind):
        idx = make_index(index_kind, entries_grid())
        query = Rect(0, 7, 5, 5)
        got = {e.payload for e in idx.search(query)}
        expected = {
            e.payload for e in entries_grid() if query.intersects(e.rect)
        }
        assert got == expected
        assert got  # non-trivial query

    def test_search_with_distance(self, index_kind):
        idx = make_index(index_kind, entries_grid())
        query = Rect(0, 7, 1, 1)
        got = {e.payload for e in idx.search(query, d=10.0)}
        expected = {
            e.payload
            for e in entries_grid()
            if query.enlarge(10.0).intersects(e.rect)
        }
        assert got == expected

    def test_no_duplicates(self, index_kind):
        # A big query rectangle spans many buckets/nodes; results must
        # still be unique.
        idx = make_index(index_kind, entries_grid())
        results = [e.payload for e in idx.search(Rect(0, 50, 50, 50))]
        assert len(results) == len(set(results))

    def test_disjoint_query_empty(self, index_kind):
        idx = make_index(index_kind, entries_grid())
        assert list(idx.search(Rect(1000, 1000, 1, 1))) == []


class TestAgainstScan:
    def test_grid_and_rtree_match_scan(self):
        entries = entries_grid(40, cell=7.0)
        scan = NestedLoopIndex(entries)
        grid = GridIndex(entries)
        rtree = RTree(entries, fanout=4)
        queries = [
            Rect(3, 20, 10, 10),
            Rect(0, 45, 40, 40),
            Rect(11, 11, 0, 0),
            Rect(35, 40, 2, 30),
        ]
        for q in queries:
            for d in (0.0, 3.0, 12.0):
                expected = {e.payload for e in scan.search(q, d)}
                assert {e.payload for e in grid.search(q, d)} == expected
                assert {e.payload for e in rtree.search(q, d)} == expected


class TestRTreeStructure:
    def test_height_grows(self):
        small = RTree(entries_grid(4), fanout=4)
        big = RTree(entries_grid(25), fanout=4)
        assert small.height == 1
        assert big.height >= 2

    def test_invalid_fanout(self):
        with pytest.raises(ValueError):
            RTree([], fanout=1)


class TestGridIndexInternals:
    def test_probe_cost_hint(self):
        idx = GridIndex(entries_grid())
        assert idx.probe_cost_hint > 0
        assert GridIndex([]).probe_cost_hint == 0.0

    def test_degenerate_all_same_point(self):
        entries = [Entry(rect=Rect(5, 5, 0, 0), payload=i) for i in range(10)]
        idx = GridIndex(entries)
        assert len(list(idx.search(Rect(5, 5, 0, 0)))) == 10
        assert list(idx.search(Rect(6, 5, 0, 0))) == []


class TestFactory:
    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_index("quadtree", [])
