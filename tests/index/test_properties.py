"""Property-based tests: every index returns exactly the Chebyshev-ball
candidates, on arbitrary rectangle sets."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.rectangle import Rect
from repro.index import Entry, GridIndex, RTree

coord = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False)
side = st.floats(min_value=0.0, max_value=200.0, allow_nan=False)


@st.composite
def rect_strategy(draw) -> Rect:
    return Rect(x=draw(coord), y=draw(coord), l=draw(side), b=draw(side))


@st.composite
def entry_lists(draw):
    rects = draw(st.lists(rect_strategy(), min_size=0, max_size=60))
    return [Entry(rect=r, payload=i) for i, r in enumerate(rects)]


def expected_hits(entries, query: Rect, d: float) -> set[int]:
    q = query.enlarge(d) if d > 0 else query
    return {e.payload for e in entries if q.intersects(e.rect)}


@settings(max_examples=60)
@given(entry_lists(), rect_strategy(), st.floats(min_value=0, max_value=100))
def test_grid_index_exact(entries, query, d):
    idx = GridIndex(entries)
    assert {e.payload for e in idx.search(query, d)} == expected_hits(
        entries, query, d
    )


@settings(max_examples=60)
@given(
    entry_lists(),
    rect_strategy(),
    st.floats(min_value=0, max_value=100),
    st.integers(min_value=2, max_value=10),
)
def test_rtree_exact(entries, query, d, fanout):
    idx = RTree(entries, fanout=fanout)
    assert {e.payload for e in idx.search(query, d)} == expected_hits(
        entries, query, d
    )
