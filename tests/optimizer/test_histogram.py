"""Tests for the histogram-based selectivity estimator."""

import pytest

from repro.data.synthetic import SyntheticSpec, generate_rects
from repro.errors import ExperimentError
from repro.geometry.rectangle import Rect
from repro.grid.partitioning import GridPartitioning
from repro.joins.reference import brute_force_join
from repro.optimizer.histogram import (
    HistogramProfile,
    estimate_join_size_histogram,
)
from repro.optimizer.stats import estimate_join_size, profile_dataset
from repro.query.predicates import Overlap
from repro.query.query import Query, Triple

SPACE = Rect.from_corners(0, 0, 4000, 4000)
GRID = GridPartitioning(SPACE, 8, 8)
TRIPLE = Triple(Overlap(), "A", "B")


def uniform(seed, n=2000):
    return generate_rects(
        SyntheticSpec(
            n=n, x_range=(0, 4000), y_range=(0, 4000),
            l_range=(0, 60), b_range=(0, 60), seed=seed,
        )
    )


def clustered(seed, n=2000):
    return generate_rects(
        SyntheticSpec(
            n=n, x_range=(0, 4000), y_range=(0, 4000),
            l_range=(0, 60), b_range=(0, 60),
            dx="clustered", dy="clustered", clusters=3, seed=seed,
        )
    )


class TestHistogramProfile:
    def test_counts_sum_to_n(self):
        rects = uniform(1)
        hist = HistogramProfile.build("A", rects, GRID)
        assert sum(hist.counts) == len(rects)

    def test_flat_skew_near_one(self):
        hist = HistogramProfile.build("A", uniform(1), GRID)
        assert hist.skew < 2.0

    def test_clustered_skew_large(self):
        hist = HistogramProfile.build("A", clustered(1), GRID)
        assert hist.skew > 4.0

    def test_empty_skew(self):
        hist = HistogramProfile.build("A", [], GRID)
        assert hist.skew == 1.0


class TestEstimates:
    def test_flat_data_matches_uniform_estimator(self):
        a, b = uniform(1), uniform(2)
        hist = estimate_join_size_histogram(
            HistogramProfile.build("A", a, GRID),
            HistogramProfile.build("B", b, GRID),
            TRIPLE,
        )
        flat = estimate_join_size(
            profile_dataset("A", a), profile_dataset("B", b), TRIPLE, SPACE.area
        )
        assert hist == pytest.approx(flat, rel=0.25)

    def test_clustered_data_beats_uniform_estimator(self):
        # Correlated clusters: the uniform estimator undershoots by well
        # over an order of magnitude; the histogram estimate recovers
        # most of that error (it is still resolution-limited — clusters
        # tighter than a cell keep it conservative).
        a, b = clustered(1), clustered(1)  # same seed = same clusters
        b = [(rid, r.translate(5, -5)) for rid, r in b]
        query = Query([TRIPLE])
        truth = len(brute_force_join(query, {"A": a, "B": b}))
        hist = estimate_join_size_histogram(
            HistogramProfile.build("A", a, GRID),
            HistogramProfile.build("B", b, GRID),
            TRIPLE,
        )
        flat = estimate_join_size(
            profile_dataset("A", a), profile_dataset("B", b), TRIPLE, SPACE.area
        )
        assert flat < truth / 10  # the uniform estimator's failure mode
        assert hist > 5 * flat  # the histogram recovers most of the gap
        assert truth / 6 <= hist <= truth * 6

    def test_disjoint_clusters_estimated_near_zero(self):
        a = [(i, Rect(100 + i, 3900, 5, 5)) for i in range(50)]
        b = [(i, Rect(3800 + (i % 10), 200, 5, 5)) for i in range(50)]
        hist = estimate_join_size_histogram(
            HistogramProfile.build("A", a, GRID),
            HistogramProfile.build("B", b, GRID),
            TRIPLE,
        )
        assert hist == 0.0

    def test_empty_side(self):
        hist = estimate_join_size_histogram(
            HistogramProfile.build("A", [], GRID),
            HistogramProfile.build("B", uniform(1), GRID),
            TRIPLE,
        )
        assert hist == 0.0

    def test_mismatched_grids_rejected(self):
        other = GridPartitioning(SPACE, 4, 4)
        with pytest.raises(ExperimentError):
            estimate_join_size_histogram(
                HistogramProfile.build("A", uniform(1), GRID),
                HistogramProfile.build("B", uniform(2), other),
                TRIPLE,
            )
