"""Tests for the cascade join-order optimizer."""

import pytest

from repro.data.synthetic import SyntheticSpec, generate_rects
from repro.errors import ExperimentError
from repro.geometry.rectangle import Rect
from repro.grid.partitioning import GridPartitioning
from repro.joins.cascade import CascadeJoin
from repro.joins.reference import brute_force_join
from repro.optimizer.planner import plan_cascade_order
from repro.optimizer.stats import (
    estimate_join_size,
    profile_dataset,
    profiles_for_query,
)
from repro.query.predicates import Overlap, Range
from repro.query.query import Query, Triple


class TestProfiles:
    def test_profile_basic(self):
        rects = [(0, Rect(0, 10, 4, 2)), (1, Rect(5, 9, 6, 4))]
        p = profile_dataset("R", rects)
        assert p.count == 2
        assert p.mean_l == 5.0
        assert p.mean_b == 3.0

    def test_profile_empty(self):
        p = profile_dataset("R", [])
        assert p.is_empty

    def test_profiles_for_query_self_join(self):
        q = Query.self_chain("R", 3, Overlap())
        rects = [(0, Rect(0, 10, 4, 2))]
        profiles = profiles_for_query(q, {"R": rects})
        assert len(profiles) == 3
        assert all(p.count == 1 for p in profiles.values())


class TestEstimator:
    def test_estimate_matches_measured_within_factor(self):
        spec = SyntheticSpec(
            n=2_000, x_range=(0, 5_000), y_range=(0, 5_000),
            l_range=(0, 100), b_range=(0, 100), seed=9,
        )
        r1 = generate_rects(spec)
        r2 = generate_rects(spec.with_seed(10))
        q = Query.chain(["R1", "R2"], Overlap())
        true_size = len(brute_force_join(q, {"R1": r1, "R2": r2}))
        est = estimate_join_size(
            profile_dataset("R1", r1),
            profile_dataset("R2", r2),
            q.triples[0],
            space_area=5_000.0**2,
        )
        assert true_size / 2 <= est <= true_size * 2

    def test_range_estimate_grows_with_d(self):
        p = profile_dataset("R", [(0, Rect(0, 10, 10, 10))] * 5)
        small = estimate_join_size(p, p, Triple(Range(1.0), "A", "B"), 1e6)
        large = estimate_join_size(p, p, Triple(Range(100.0), "A", "B"), 1e6)
        assert large > small

    def test_empty_profile_zero(self):
        p = profile_dataset("R", [(0, Rect(0, 1, 1, 1))])
        empty = profile_dataset("E", [])
        assert estimate_join_size(p, empty, Triple(Overlap(), "A", "B"), 1e6) == 0

    def test_invalid_area(self):
        p = profile_dataset("R", [(0, Rect(0, 1, 1, 1))])
        with pytest.raises(ExperimentError):
            estimate_join_size(p, p, Triple(Overlap(), "A", "B"), 0.0)


@pytest.fixture(scope="module")
def lopsided():
    """A star query where one leaf is tiny and selective."""
    big = SyntheticSpec(
        n=1_500, x_range=(0, 3_000), y_range=(0, 3_000),
        l_range=(0, 120), b_range=(0, 120), seed=21,
    )
    tiny = SyntheticSpec(
        n=40, x_range=(0, 3_000), y_range=(0, 3_000),
        l_range=(0, 20), b_range=(0, 20), seed=22,
    )
    return {
        "hub": generate_rects(big),
        "big_leaf": generate_rects(big.with_seed(23)),
        "tiny_leaf": generate_rects(tiny),
    }


class TestPlanner:
    def test_order_is_connected_permutation(self, lopsided):
        q = Query.star("hub", ["big_leaf", "tiny_leaf"], Overlap())
        plan = plan_cascade_order(q, lopsided)
        assert sorted(plan.order) == sorted(q.slots)
        for i, slot in enumerate(plan.order[1:], start=1):
            assert any(
                t.other(slot) in plan.order[:i]
                for t in q.triples_touching(slot)
            )

    def test_prefers_selective_edge_first(self, lopsided):
        q = Query.star("hub", ["big_leaf", "tiny_leaf"], Overlap())
        plan = plan_cascade_order(q, lopsided)
        # The hub x tiny_leaf edge is orders of magnitude smaller.
        assert set(plan.order[:2]) == {"hub", "tiny_leaf"}

    def test_planned_order_reduces_intermediates(self, lopsided):
        q = Query.star("hub", ["big_leaf", "tiny_leaf"], Overlap())
        grid = GridPartitioning(Rect.from_corners(0, 0, 3_000, 3_000), 4, 4)
        expected = brute_force_join(q, lopsided)

        plan = plan_cascade_order(q, lopsided)
        good = CascadeJoin(order=plan.order).run(q, lopsided, grid)
        bad = CascadeJoin(order=("hub", "big_leaf", "tiny_leaf")).run(
            q, lopsided, grid
        )
        assert good.tuples == expected
        assert bad.tuples == expected
        assert good.stats.shuffled_records < bad.stats.shuffled_records

    def test_invalid_order_rejected(self, lopsided):
        q = Query.star("hub", ["big_leaf", "tiny_leaf"], Overlap())
        grid = GridPartitioning(Rect.from_corners(0, 0, 3_000, 3_000), 2, 2)
        with pytest.raises(Exception):
            CascadeJoin(order=("hub", "hub", "tiny_leaf")).run(
                q, lopsided, grid
            )

    def test_needs_inputs(self):
        q = Query.chain(["A", "B"], Overlap())
        with pytest.raises(ExperimentError):
            plan_cascade_order(q)

    def test_estimated_sizes_exposed(self, lopsided):
        q = Query.star("hub", ["big_leaf", "tiny_leaf"], Overlap())
        plan = plan_cascade_order(q, lopsided)
        assert len(plan.estimated_sizes) == len(q.slots) - 1
        assert plan.estimated_total_intermediate >= 0
