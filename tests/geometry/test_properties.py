"""Property-based tests for the geometry layer (hypothesis)."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.ops import axis_gaps, bounding_rect, chebyshev_distance
from repro.geometry.rectangle import Rect

coords = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
sides = st.floats(min_value=0.0, max_value=1e5, allow_nan=False, allow_infinity=False)
small_d = st.floats(min_value=0.0, max_value=1e4, allow_nan=False, allow_infinity=False)


@st.composite
def rects(draw) -> Rect:
    return Rect(x=draw(coords), y=draw(coords), l=draw(sides), b=draw(sides))


@given(rects())
def test_extent_invariants(r: Rect):
    assert r.x_min <= r.x_max
    assert r.y_min <= r.y_max
    assert r.contains_point(*r.start_point)
    assert r.contains_point(*r.bottom_right)
    assert r.contains_point(*r.center)


@given(rects(), rects())
def test_intersects_symmetric(a: Rect, b: Rect):
    assert a.intersects(b) == b.intersects(a)


@given(rects(), rects())
def test_intersection_consistent_with_intersects(a: Rect, b: Rect):
    inter = a.intersection(b)
    assert (inter is not None) == a.intersects(b)
    if inter is not None:
        assert a.contains_rect(inter)
        assert b.contains_rect(inter)


@given(rects(), rects())
def test_min_distance_symmetric_and_zero_iff_intersecting(a: Rect, b: Rect):
    d_ab = a.min_distance(b)
    assert d_ab == b.min_distance(a)
    assert (d_ab == 0.0) == a.intersects(b)


@given(rects(), rects())
def test_min_distance_vs_chebyshev(a: Rect, b: Rect):
    # L-inf <= L2 <= sqrt(2) * L-inf
    cheb = chebyshev_distance(a, b)
    eucl = a.min_distance(b)
    assert cheb <= eucl + 1e-9
    assert eucl <= cheb * math.sqrt(2) + 1e-9


@given(rects(), small_d)
def test_enlarge_contains_original(r: Rect, d: float):
    e = r.enlarge(d)
    assert e.contains_rect(r)
    assert e.l == r.l + 2 * d
    assert e.b == r.b + 2 * d


@given(rects(), rects(), small_d)
def test_enlarged_overlap_equals_chebyshev_bound(a: Rect, b: Rect, d: float):
    # The 2-way range routing test (§5.3) is Chebyshev <= d in real
    # arithmetic.  In floats the two sides round different subtractions,
    # so they may disagree within rounding distance of the exact-d
    # boundary (e.g. a true gap of 1 + 1e-311 rounds to exactly 1.0 in
    # chebyshev_distance while enlarge(1.0) resolves it exactly); away
    # from that boundary they must agree (DESIGN.md §6).
    routed = a.enlarge(d).intersects(b)
    cheb = chebyshev_distance(a, b)
    if routed != (cheb <= d):
        magnitudes = (cheb, d, abs(a.x), abs(a.y), a.l, a.b,
                      abs(b.x), abs(b.y), b.l, b.b)
        slack = 4 * max(math.ulp(m) for m in magnitudes)
        assert abs(cheb - d) <= slack


@given(rects(), rects(), small_d)
def test_within_distance_implies_enlarged_overlap(a: Rect, b: Rect, d: float):
    # Necessary-condition direction used by the range join's filter step.
    if a.within_distance(b, d):
        assert a.enlarge(d).intersects(b)


@given(rects(), st.floats(min_value=0.1, max_value=10, allow_nan=False))
def test_enlarge_by_factor_center_preserved(r: Rect, k: float):
    e = r.enlarge_by_factor(k)
    cx, cy = r.center
    ex, ey = e.center
    scale = max(1.0, abs(cx), abs(cy))
    assert abs(ex - cx) <= 1e-6 * scale
    assert abs(ey - cy) <= 1e-6 * scale


@given(st.lists(rects(), min_size=1, max_size=20))
def test_bounding_rect_contains_all(rs: list[Rect]):
    # The (x, y, l, b) representation stores extents as differences, so
    # coverage holds up to one rounding ulp of the box span.
    box = bounding_rect(rs)
    eps = 1e-9 * max(
        1.0, abs(box.x_min), abs(box.x_max), abs(box.y_min), abs(box.y_max)
    )
    for r in rs:
        assert box.x_min <= r.x_min + eps
        assert r.x_max <= box.x_max + eps
        assert box.y_min <= r.y_min + eps
        assert r.y_max <= box.y_max + eps


@given(rects(), rects())
def test_axis_gaps_match_distance(a: Rect, b: Rect):
    dx, dy = axis_gaps(a, b)
    assert math.hypot(dx, dy) == a.min_distance(b)
