"""Unit tests for the free-standing geometry helpers."""

import math

import pytest

from repro.errors import GeometryError
from repro.geometry.ops import (
    axis_gaps,
    bounding_rect,
    chebyshev_distance,
    point_rect_distance,
)
from repro.geometry.rectangle import Rect


class TestBoundingRect:
    def test_single(self):
        r = Rect(1, 2, 3, 1)
        assert bounding_rect([r]) == r

    def test_multiple(self):
        rects = [Rect(0, 5, 2, 2), Rect(8, 10, 1, 1), Rect(3, 2, 1, 1)]
        box = bounding_rect(rects)
        assert (box.x_min, box.x_max) == (0, 9)
        assert (box.y_min, box.y_max) == (1, 10)

    def test_empty_rejected(self):
        with pytest.raises(GeometryError):
            bounding_rect([])

    def test_accepts_generator(self):
        box = bounding_rect(Rect(i, i + 1, 1, 1) for i in range(3))
        assert box.x_max == 3


class TestPointRectDistance:
    def test_inside_is_zero(self):
        assert point_rect_distance(5, 5, Rect(0, 10, 10, 10)) == 0

    def test_on_boundary_is_zero(self):
        assert point_rect_distance(10, 5, Rect(0, 10, 10, 10)) == 0

    def test_axis_gap(self):
        assert point_rect_distance(15, 5, Rect(0, 10, 10, 10)) == 5

    def test_corner_gap(self):
        assert point_rect_distance(13, 14, Rect(0, 10, 10, 10)) == 5


class TestAxisGaps:
    def test_overlapping(self):
        assert axis_gaps(Rect(0, 10, 5, 5), Rect(3, 9, 5, 5)) == (0, 0)

    def test_separated_both_axes(self):
        a = Rect(0, 10, 2, 2)
        b = Rect(5, 4, 2, 2)
        assert axis_gaps(a, b) == (3, 4)

    def test_consistency_with_min_distance(self):
        a = Rect(0, 10, 2, 2)
        b = Rect(9, 1, 3, 1)
        dx, dy = axis_gaps(a, b)
        assert math.hypot(dx, dy) == pytest.approx(a.min_distance(b))


class TestChebyshev:
    def test_equals_max_gap(self):
        a = Rect(0, 10, 2, 2)
        b = Rect(5, 4, 2, 2)
        assert chebyshev_distance(a, b) == 4

    def test_matches_enlarged_overlap(self):
        # chebyshev(a, b) <= d  <=>  a.enlarge(d) intersects b
        a = Rect(0, 10, 2, 2)
        b = Rect(7, 2, 2, 2)
        d = chebyshev_distance(a, b)
        assert a.enlarge(d).intersects(b)
        assert not a.enlarge(d * 0.99).intersects(b)
