"""Unit tests for the rectangle object model (paper Section 1.1)."""

import math

import pytest

from repro.errors import GeometryError
from repro.geometry.rectangle import Rect


class TestConstruction:
    def test_basic_extent(self):
        r = Rect(x=10, y=80, l=30, b=20)
        assert r.x_min == 10
        assert r.x_max == 40
        assert r.y_max == 80  # the start-point is the TOP-left vertex
        assert r.y_min == 60

    def test_start_point_is_top_left(self):
        r = Rect(x=5, y=9, l=2, b=3)
        assert r.start_point == (5, 9)
        assert r.bottom_right == (7, 6)

    def test_degenerate_point(self):
        r = Rect.from_point(3, 4)
        assert r.area == 0
        assert r.contains_point(3, 4)
        assert not r.contains_point(3.1, 4)

    def test_degenerate_segment(self):
        r = Rect(x=0, y=0, l=10, b=0)
        assert r.area == 0
        assert r.diagonal == 10

    def test_negative_sides_rejected(self):
        with pytest.raises(GeometryError):
            Rect(x=0, y=0, l=-1, b=0)
        with pytest.raises(GeometryError):
            Rect(x=0, y=0, l=0, b=-0.5)

    def test_non_finite_rejected(self):
        with pytest.raises(GeometryError):
            Rect(x=math.nan, y=0, l=1, b=1)
        with pytest.raises(GeometryError):
            Rect(x=0, y=math.inf, l=1, b=1)

    def test_from_corners_roundtrip(self):
        r = Rect.from_corners(1, 2, 5, 9)
        assert (r.x_min, r.y_min, r.x_max, r.y_max) == (1, 2, 5, 9)
        assert r.x == 1 and r.y == 9  # top-left

    def test_from_corners_empty_rejected(self):
        with pytest.raises(GeometryError):
            Rect.from_corners(5, 0, 1, 1)

    def test_frozen(self):
        r = Rect(0, 0, 1, 1)
        with pytest.raises(AttributeError):
            r.x = 5  # type: ignore[misc]

    def test_equality_and_hash(self):
        assert Rect(1, 2, 3, 4) == Rect(1, 2, 3, 4)
        assert len({Rect(1, 2, 3, 4), Rect(1, 2, 3, 4)}) == 1


class TestDerivedProperties:
    def test_center(self):
        assert Rect(0, 10, 4, 6).center == (2, 7)

    def test_area(self):
        assert Rect(0, 0, 3, 4).area == 12

    def test_diagonal(self):
        assert Rect(0, 0, 3, 4).diagonal == 5


class TestIntersection:
    def test_overlapping(self):
        a = Rect(0, 10, 6, 6)  # x [0,6], y [4,10]
        b = Rect(4, 8, 6, 6)  # x [4,10], y [2,8]
        assert a.intersects(b)
        inter = a.intersection(b)
        assert inter == Rect.from_corners(4, 4, 6, 8)

    def test_touching_edges_count_as_overlap(self):
        a = Rect(0, 10, 5, 5)
        b = Rect(5, 10, 5, 5)  # shares the x=5 edge
        assert a.intersects(b)
        inter = a.intersection(b)
        assert inter is not None and inter.area == 0

    def test_touching_corner_counts(self):
        a = Rect(0, 10, 5, 5)
        b = Rect(5, 5, 5, 5)  # touches only at (5, 5)
        assert a.intersects(b)

    def test_disjoint(self):
        a = Rect(0, 10, 2, 2)
        b = Rect(5, 10, 2, 2)
        assert not a.intersects(b)
        assert a.intersection(b) is None

    def test_containment(self):
        outer = Rect(0, 10, 10, 10)
        inner = Rect(2, 8, 2, 2)
        assert outer.contains_rect(inner)
        assert not inner.contains_rect(outer)
        assert outer.intersects(inner)
        assert outer.intersection(inner) == inner

    def test_intersection_start_point(self):
        # The start-point of the overlap area drives 2-way dedup (§5.2).
        a = Rect(0, 10, 8, 8)
        b = Rect(5, 7, 8, 8)
        inter = a.intersection(b)
        assert inter is not None
        assert inter.start_point == (5, 7)


class TestDistance:
    def test_zero_when_overlapping(self):
        a = Rect(0, 10, 5, 5)
        b = Rect(2, 9, 5, 5)
        assert a.min_distance(b) == 0

    def test_horizontal_gap(self):
        a = Rect(0, 10, 2, 2)
        b = Rect(7, 10, 2, 2)
        assert a.min_distance(b) == 5

    def test_vertical_gap(self):
        a = Rect(0, 10, 2, 2)  # y [8, 10]
        b = Rect(0, 5, 2, 2)  # y [3, 5]
        assert a.min_distance(b) == 3

    def test_diagonal_gap(self):
        a = Rect(0, 10, 2, 2)  # right edge x=2, bottom y=8
        b = Rect(5, 4, 2, 2)  # left edge x=5, top y=4
        assert a.min_distance(b) == 5  # hypot(3, 4)

    def test_symmetry(self):
        a = Rect(0, 10, 2, 2)
        b = Rect(9, 3, 4, 1)
        assert a.min_distance(b) == b.min_distance(a)

    def test_within_distance_closed(self):
        a = Rect(0, 10, 2, 2)
        b = Rect(7, 10, 2, 2)
        assert a.within_distance(b, 5.0)  # exactly at distance 5
        assert not a.within_distance(b, 4.999)

    def test_within_distance_negative_rejected(self):
        with pytest.raises(GeometryError):
            Rect(0, 0, 1, 1).within_distance(Rect(5, 5, 1, 1), -1)


class TestEnlarge:
    def test_enlarge_by_d(self):
        # §5.3: top-left -> (x-d, y+d), bottom-right -> (x2+d, y2-d).
        r = Rect(10, 20, 4, 6)
        e = r.enlarge(3)
        assert e.start_point == (7, 23)
        assert e.bottom_right == (17, 11)

    def test_enlarge_zero_is_identity(self):
        r = Rect(1, 2, 3, 4)
        assert r.enlarge(0) == r

    def test_enlarge_negative_rejected(self):
        with pytest.raises(GeometryError):
            Rect(0, 0, 1, 1).enlarge(-1)

    def test_enlarged_overlap_iff_chebyshev(self):
        # r2 intersects r1.enlarge(d) iff Chebyshev distance <= d.
        r1 = Rect(0, 10, 2, 2)
        r2 = Rect(5, 10, 2, 2)  # dx = 3, dy = 0
        assert r1.enlarge(3).intersects(r2)
        assert not r1.enlarge(2.9).intersects(r2)

    def test_enlarge_by_factor_keeps_center(self):
        r = Rect(10, 20, 4, 6)
        e = r.enlarge_by_factor(2.0)
        assert e.center == r.center
        assert e.l == 8 and e.b == 12

    def test_enlarge_by_factor_one_is_identity(self):
        r = Rect(1, 9, 3, 4)
        assert r.enlarge_by_factor(1.0) == r

    def test_enlarge_by_factor_shrink(self):
        r = Rect(0, 10, 4, 4)
        e = r.enlarge_by_factor(0.5)
        assert e.l == 2 and e.b == 2
        assert e.center == r.center

    def test_enlarge_by_factor_nonpositive_rejected(self):
        with pytest.raises(GeometryError):
            Rect(0, 0, 1, 1).enlarge_by_factor(0.0)


class TestTransforms:
    def test_translate(self):
        assert Rect(1, 2, 3, 4).translate(10, -2) == Rect(11, 0, 3, 4)

    def test_scale(self):
        assert Rect(2, 4, 6, 8).scale(0.5) == Rect(1, 2, 3, 4)

    def test_scale_nonpositive_rejected(self):
        with pytest.raises(GeometryError):
            Rect(0, 0, 1, 1).scale(-2)
