"""Shim for legacy editable installs on offline environments without `wheel`.

`pip install -e . --no-build-isolation` falls back to `setup.py develop`
when PEP 517 is disabled; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
